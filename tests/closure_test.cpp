//===- tests/closure_test.cpp - Tiered closure differential tests ---------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The blocked/tiled closure representation is only acceptable if it is
// invisible: every reaches / independent / descendants answer must be
// bit-identical to the dense representation, on every DAG, including
// after incremental edge additions, removals, and spill-style node
// appends. These tests check the tile container against a dense
// reference, then the whole analysis differentially across a few hundred
// random DAGs plus the generator seed corpus.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"
#include "graph/Closure.h"
#include "graph/DAGBuilder.h"
#include "support/RNG.h"
#include "support/TiledBitMatrix.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace ursa;

namespace {

/// RAII override of the closure policy; restores the previous mode and
/// threshold on scope exit so tests cannot leak policy into each other.
struct ScopedClosurePolicy {
  ClosureMode OldMode;
  unsigned OldThreshold;
  explicit ScopedClosurePolicy(ClosureMode M) : ScopedClosurePolicy(M, 0) {}
  ScopedClosurePolicy(ClosureMode M, unsigned Threshold)
      : OldMode(closureMode()), OldThreshold(closureThreshold()) {
    setClosureMode(M);
    if (Threshold)
      setClosureThreshold(Threshold);
  }
  ~ScopedClosurePolicy() {
    setClosureMode(OldMode);
    setClosureThreshold(OldThreshold);
  }
};

DependenceDAG genDAG(GenOptions::ShapeKind Shape, unsigned NumInstrs,
                     unsigned Window, uint64_t Seed) {
  GenOptions G;
  G.Shape = Shape;
  G.NumInstrs = NumInstrs;
  G.Window = Window;
  G.Seed = Seed;
  return buildDAG(generateTrace(G));
}

/// Every closure-visible quantity of \p Got must equal \p Want's.
void expectSameClosure(const DAGAnalysis &Got, const DAGAnalysis &Want,
                       unsigned N, const char *What) {
  ASSERT_EQ(Got.topoOrder(), Want.topoOrder()) << What;
  EXPECT_EQ(Got.criticalPathLength(), Want.criticalPathLength()) << What;
  for (unsigned U = 0; U != N; ++U) {
    ASSERT_TRUE(Got.descendants(U) == Want.descendants(U))
        << What << ": descendants of " << U;
    ASSERT_TRUE(Got.ancestors(U) == Want.ancestors(U))
        << What << ": ancestors of " << U;
    EXPECT_EQ(Got.descendants(U).count(), Want.descendants(U).count())
        << What << ": row count of " << U;
  }
  for (unsigned U = 0; U != N; ++U)
    for (unsigned V = 0; V != N; ++V) {
      ASSERT_EQ(Got.reaches(U, V), Want.reaches(U, V))
          << What << ": reaches(" << U << "," << V << ")";
      ASSERT_EQ(Got.independent(U, V), Want.independent(U, V))
          << What << ": independent(" << U << "," << V << ")";
    }
}

/// Safe new edges: independent pairs of real nodes.
std::vector<std::pair<unsigned, unsigned>>
independentPairs(const DependenceDAG &D, const DAGAnalysis &A) {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned U = 2; U != D.size(); ++U)
    for (unsigned V = 2; V != D.size(); ++V)
      if (A.independent(U, V))
        Pairs.emplace_back(U, V);
  return Pairs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Layer 0: the tile container against a dense reference
//===----------------------------------------------------------------------===//

TEST(TiledBitMatrix, RandomBitsMatchDenseReference) {
  for (unsigned Size : {1u, 63u, 64u, 65u, 150u, 200u}) {
    RNG Rng(Size * 31 + 7);
    TiledBitMatrix T(Size);
    BitMatrix Ref(Size);
    unsigned Bits = Size * 8;
    for (unsigned I = 0; I != Bits; ++I) {
      unsigned R = unsigned(Rng.below(Size)), C = unsigned(Rng.below(Size));
      T.set(R, C);
      Ref.set(R, C);
    }
    for (unsigned R = 0; R != Size; ++R) {
      EXPECT_EQ(T.rowCount(R), Ref.popcountRow(R)) << Size << " row " << R;
      EXPECT_TRUE(T.rowBitset(R) == Ref.row(R)) << Size << " row " << R;
      unsigned Walk = T.rowFindNext(R, 0);
      unsigned RefWalk = Ref.row(R).findNext(0);
      while (Walk != Size || RefWalk != Size) {
        ASSERT_EQ(Walk, RefWalk) << Size << " row " << R;
        Walk = T.rowFindNext(R, Walk + 1);
        RefWalk = Ref.row(R).findNext(RefWalk + 1);
      }
      std::vector<unsigned> Cols;
      T.rowForEach(R, [&](unsigned C) { Cols.push_back(C); });
      unsigned K = 0;
      for (unsigned C = 0; C != Size; ++C)
        if (Ref.test(R, C)) {
          ASSERT_LT(K, Cols.size());
          ASSERT_EQ(Cols[K++], C);
        }
      EXPECT_EQ(K, Cols.size());
    }
  }
}

TEST(TiledBitMatrix, CollapseToAllOneStaysExact) {
  // Fill the top-left 64x64 tile completely: it must collapse to AllOne
  // (memory returns to the pool) and still answer every query exactly.
  TiledBitMatrix T(130);
  for (unsigned R = 0; R != 64; ++R)
    for (unsigned WI = 0; WI != 1; ++WI)
      T.orRowWord(R, WI, ~uint64_t(0));
  for (unsigned R = 0; R != 64; ++R) {
    EXPECT_EQ(T.rowWord(R, 0), ~uint64_t(0));
    EXPECT_EQ(T.rowCount(R), 64u);
  }
  // A ragged boundary tile (columns 128..129) must never report columns
  // beyond the matrix side even when every legal bit is set.
  for (unsigned R = 64; R != 130; ++R)
    for (unsigned C = 128; C != 130; ++C)
      T.set(R, C);
  for (unsigned R = 64; R != 130; ++R) {
    EXPECT_EQ(T.rowCount(R), 2u);
    EXPECT_EQ(T.rowFindNext(R, 0), 128u);
    EXPECT_EQ(T.rowFindNext(R, 129), 129u);
    EXPECT_EQ(T.rowFindNext(R, 130), 130u); // == size(): none
  }
}

TEST(TiledBitMatrix, OrRowAndClearRow) {
  TiledBitMatrix T(100);
  // Source and destination rows share tiles (both in tile-row 0).
  T.set(3, 10);
  T.set(3, 70);
  T.orRow(5, 3);
  EXPECT_TRUE(T.test(5, 10));
  EXPECT_TRUE(T.test(5, 70));
  // OR from an AllOne tile: fill rows 0..63 of the first tile.
  for (unsigned R = 0; R != 64; ++R)
    T.orRowWord(R, 0, ~uint64_t(0));
  T.orRow(70, 0);
  for (unsigned C = 0; C != 64; ++C)
    EXPECT_TRUE(T.test(70, C)) << C;
  // clearRow demotes the AllOne tile for the cleared row only.
  T.clearRow(7);
  EXPECT_EQ(T.rowCount(7), 0u);
  for (unsigned C = 0; C != 64; ++C)
    EXPECT_TRUE(T.test(8, C)) << "neighbor row lost bits";
  // growTo preserves bits and keeps new space empty.
  T.growTo(200);
  EXPECT_TRUE(T.test(5, 70));
  EXPECT_TRUE(T.test(70, 63));
  EXPECT_FALSE(T.test(5, 150));
  T.set(150, 199);
  EXPECT_TRUE(T.test(150, 199));
}

//===----------------------------------------------------------------------===//
// Layer 1: dense vs blocked analyses over random DAGs
//===----------------------------------------------------------------------===//

TEST(ClosureDifferential, TwoHundredRandomDAGs) {
  // 200 random DAGs across the generator's shapes, sizes, and seeds: the
  // blocked representation must answer every closure query identically
  // to the dense one, including the separator-segmented build path.
  const GenOptions::ShapeKind Shapes[] = {GenOptions::ShapeKind::Layered,
                                          GenOptions::ShapeKind::Expression,
                                          GenOptions::ShapeKind::Chains};
  unsigned Count = 0;
  for (uint64_t Seed = 1; Seed <= 34 && Count < 200; ++Seed)
    for (GenOptions::ShapeKind Shape : Shapes) {
      unsigned NumInstrs = 10 + unsigned(Seed * 7 % 50);
      unsigned Window = 2 + unsigned(Seed % 12);
      DependenceDAG D = genDAG(Shape, NumInstrs, Window, Seed);
      std::unique_ptr<DAGAnalysis> Dense, Blocked;
      {
        ScopedClosurePolicy P(ClosureMode::Dense);
        Dense = std::make_unique<DAGAnalysis>(D);
        EXPECT_EQ(Dense->closureRep(), ClosureRep::Dense);
      }
      {
        ScopedClosurePolicy P(ClosureMode::Blocked);
        Blocked = std::make_unique<DAGAnalysis>(D);
        EXPECT_EQ(Blocked->closureRep(), ClosureRep::Tiled);
      }
      expectSameClosure(*Blocked, *Dense, D.size(), "dense vs blocked");
      EXPECT_GT(Blocked->closureMemoryBytes(), 0u);
      ++Count;
    }
  EXPECT_GE(Count, 100u) << "corpus shrank unexpectedly";
}

TEST(ClosureDifferential, SeedCorpusWithMemAndBranches) {
  // Heavier traces: memory ops and branches create long ordering combs
  // with few separators — the worst case for segment composition.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    GenOptions G;
    G.NumInstrs = 60;
    G.Window = 10;
    G.MemOpProb = 0.3;
    G.BranchProb = 0.1;
    G.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(G));
    std::unique_ptr<DAGAnalysis> Dense, Blocked;
    {
      ScopedClosurePolicy P(ClosureMode::Dense);
      Dense = std::make_unique<DAGAnalysis>(D);
    }
    {
      ScopedClosurePolicy P(ClosureMode::Blocked);
      Blocked = std::make_unique<DAGAnalysis>(D);
    }
    expectSameClosure(*Blocked, *Dense, D.size(), "seed corpus");
  }
}

//===----------------------------------------------------------------------===//
// Layer 2: incremental adds and removes, both representations
//===----------------------------------------------------------------------===//

TEST(ClosureIncremental, AddSequencesMatchFreshBuild) {
  for (ClosureMode Mode : {ClosureMode::Dense, ClosureMode::Blocked}) {
    ScopedClosurePolicy P(Mode);
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 30, 10, Seed);
      DAGAnalysis Base(D);
      RNG Rng(Seed * 91 + 3);
      auto Pairs = independentPairs(D, Base);
      if (Pairs.empty())
        continue;
      std::vector<std::pair<unsigned, unsigned>> Added;
      for (unsigned K = 0; K != 2 && !Pairs.empty(); ++K) {
        auto [U, V] = Pairs[Rng.below(Pairs.size())];
        // Check against the *current* DAG: the first added edge may have
        // ordered this pair, and a cycle-closing edge corrupts the DAG.
        DAGAnalysis Cur(D);
        if (!Cur.independent(U, V) || !D.addEdge(U, V, EdgeKind::Sequence))
          continue;
        Added.emplace_back(U, V);
      }
      if (Added.empty())
        continue;
      std::unique_ptr<DAGAnalysis> Inc =
          DAGAnalysis::buildIncremental(D, Base, Added);
      ASSERT_TRUE(Inc) << "safe edges must take the incremental path";
      DAGAnalysis Fresh(D);
      expectSameClosure(*Inc, Fresh, D.size(), "incremental add");
    }
  }
}

TEST(ClosureIncremental, JournaledRemovalsMatchFreshBuild) {
  for (ClosureMode Mode : {ClosureMode::Dense, ClosureMode::Blocked}) {
    ScopedClosurePolicy P(Mode);
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 30, 10, Seed);
      // Seed a few extra sequence edges we are then allowed to remove
      // (data edges are semantic and never removed).
      {
        DAGAnalysis A0(D);
        auto Pairs = independentPairs(D, A0);
        RNG Rng(Seed * 17 + 5);
        for (unsigned K = 0; K != 3 && !Pairs.empty(); ++K) {
          auto [U, V] = Pairs[Rng.below(Pairs.size())];
          DAGAnalysis Cur(D);
          if (Cur.independent(U, V))
            D.addEdge(U, V, EdgeKind::Sequence);
        }
      }
      DAGAnalysis Base(D);

      // Remove one sequence edge under a journal, then add one new edge.
      EdgeDelta Delta;
      D.startJournal(Delta);
      bool Removed = false;
      for (unsigned U = 2; U != D.size() && !Removed; ++U)
        for (const auto &[V, K] : D.succs(U))
          if (K == EdgeKind::Sequence && !DependenceDAG::isVirtual(V)) {
            Removed = D.removeEdge(U, V);
            break;
          }
      D.normalizeVirtualEdges();
      D.stopJournal();
      if (!Removed)
        continue;

      std::unique_ptr<DAGAnalysis> Inc =
          DAGAnalysis::buildIncrementalDelta(D, Base, Delta);
      ASSERT_TRUE(Inc) << "journaled removal must take the delta path";
      DAGAnalysis Fresh(D);
      expectSameClosure(*Inc, Fresh, D.size(), "incremental remove");
    }
  }
}

TEST(ClosureIncremental, SpillStyleNodeAppendsMatchFreshBuild) {
  for (ClosureMode Mode : {ClosureMode::Dense, ClosureMode::Blocked}) {
    ScopedClosurePolicy P(Mode);
    for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
      DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 25, 8, Seed);
      DAGAnalysis Base(D);

      // Mimic a spill: append two nodes, wire them between an existing
      // def and one of its dependence successors, remove the direct edge.
      unsigned Def = 0, Use = 0;
      for (unsigned U = 2; U != D.size() && !Def; ++U)
        for (const auto &[V, K] : D.succs(U))
          if (!DependenceDAG::isVirtual(V)) {
            Def = U;
            Use = V;
            break;
          }
      ASSERT_NE(Def, 0u);

      EdgeDelta Delta;
      D.startJournal(Delta);
      unsigned Store = D.addInstrNode(D.instrAt(Def));
      unsigned Reload = D.addInstrNode(D.instrAt(Def));
      D.removeEdge(Def, Use);
      D.addEdge(Def, Store, EdgeKind::Data);
      D.addEdge(Store, Reload, EdgeKind::Data);
      D.addEdge(Reload, Use, EdgeKind::Data);
      D.normalizeVirtualEdges();
      D.stopJournal();

      std::unique_ptr<DAGAnalysis> Inc =
          DAGAnalysis::buildIncrementalDelta(D, Base, Delta);
      ASSERT_TRUE(Inc) << "spill-style delta must take the delta path";
      DAGAnalysis Fresh(D);
      expectSameClosure(*Inc, Fresh, D.size(), "spill-style delta");
    }
  }
}

//===----------------------------------------------------------------------===//
// Contracts: malformed inputs must be rejected, not half-applied
//===----------------------------------------------------------------------===//

TEST(ClosureIncremental, RejectsSelfEdges) {
  DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 20, 6, 1);
  DAGAnalysis Base(D);
  // A self-edge can never be part of a legal proposal; it must be
  // rejected before any row of the closure is touched.
  EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{5, 5}}), nullptr);
  EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{2, 3}, {7, 7}}),
            nullptr);
  // Out-of-range endpoints too.
  EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{2, D.size()}}), nullptr);
}

TEST(ClosureIncremental, DeduplicatesRepeatedEdges) {
  DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 25, 8, 2);
  DAGAnalysis Base(D);
  auto Pairs = independentPairs(D, Base);
  ASSERT_FALSE(Pairs.empty());
  auto [U, V] = Pairs.front();
  ASSERT_TRUE(D.addEdge(U, V, EdgeKind::Sequence));

  std::unique_ptr<DAGAnalysis> Once =
      DAGAnalysis::buildIncremental(D, Base, {{U, V}});
  std::unique_ptr<DAGAnalysis> Thrice =
      DAGAnalysis::buildIncremental(D, Base, {{U, V}, {U, V}, {U, V}});
  ASSERT_TRUE(Once);
  ASSERT_TRUE(Thrice);
  expectSameClosure(*Thrice, *Once, D.size(), "deduped edges");
}

TEST(ClosureIncremental, DeltaContractRejectsBadJournals) {
  DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 20, 6, 3);
  DAGAnalysis Base(D);

  EdgeDelta Incomplete;
  Incomplete.NodesBefore = D.size();
  Incomplete.Complete = false;
  EXPECT_EQ(DAGAnalysis::buildIncrementalDelta(D, Base, Incomplete), nullptr)
      << "mutations without a journal void the delta";

  EdgeDelta WrongBase;
  WrongBase.NodesBefore = D.size() + 1;
  EXPECT_EQ(DAGAnalysis::buildIncrementalDelta(D, Base, WrongBase), nullptr)
      << "node-count mismatch voids the delta";

  // An empty, complete delta on an unchanged DAG is just a rebuild.
  EdgeDelta Empty;
  Empty.NodesBefore = D.size();
  std::unique_ptr<DAGAnalysis> Same =
      DAGAnalysis::buildIncrementalDelta(D, Base, Empty);
  ASSERT_TRUE(Same);
  expectSameClosure(*Same, Base, D.size(), "empty delta");
}

//===----------------------------------------------------------------------===//
// Policy plumbing
//===----------------------------------------------------------------------===//

TEST(ClosurePolicy, ModeAndThresholdControlRepresentation) {
  DependenceDAG D = genDAG(GenOptions::ShapeKind::Layered, 30, 8, 4);
  {
    ScopedClosurePolicy P(ClosureMode::Auto, /*Threshold=*/8);
    DAGAnalysis A(D); // N > 8: Auto goes tiled
    EXPECT_EQ(A.closureRep(), ClosureRep::Tiled);
    EXPECT_STREQ(closureRepName(A.closureRep()), "blocked");
  }
  {
    ScopedClosurePolicy P(ClosureMode::Auto, /*Threshold=*/100000);
    DAGAnalysis A(D);
    EXPECT_EQ(A.closureRep(), ClosureRep::Dense);
    EXPECT_STREQ(closureRepName(A.closureRep()), "dense");
  }
  {
    ScopedClosurePolicy P(ClosureMode::Dense, /*Threshold=*/8);
    DAGAnalysis A(D); // explicit mode beats the threshold
    EXPECT_EQ(A.closureRep(), ClosureRep::Dense);
  }
}
