//===- tests/beam_test.cpp - Beam/portfolio driver search -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The beam-search driver's contracts: BeamWidth=1 reproduces the greedy
// keep-one loop bit-for-bit (same RoundLog, same FinalRequired, at any
// thread count), wider beams are bit-identical across thread counts and
// repeat runs, never leave more excess than greedy, and portfolio mode —
// which races the default ordering as one of its racers — can only match
// or beat the greedy allocation. The TieBreakSeed permutation tests pin
// the plateau-adoption fix: a shuffled proposal list must never livelock
// the round loop or burn the round budget on no-op winners.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "ursa/Driver.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ursa;

namespace {

/// Every observable outcome byte-for-byte: accounting, per-resource
/// requirements, and the full round log.
void expectIdentical(const URSAResult &A, const URSAResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Rounds, B.Rounds) << What;
  EXPECT_EQ(A.SeqEdgesAdded, B.SeqEdgesAdded) << What;
  EXPECT_EQ(A.SpillsInserted, B.SpillsInserted) << What;
  EXPECT_EQ(A.WithinLimits, B.WithinLimits) << What;
  EXPECT_EQ(A.FinalRequired, B.FinalRequired) << What;
  EXPECT_EQ(A.CritPathAfter, B.CritPathAfter) << What;
  ASSERT_EQ(A.RoundLog.size(), B.RoundLog.size()) << What;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I) {
    const RoundRecord &X = A.RoundLog[I], &Y = B.RoundLog[I];
    EXPECT_EQ(X.Kind, Y.Kind) << What << " round " << I;
    EXPECT_EQ(X.Resource, Y.Resource) << What << " round " << I;
    EXPECT_EQ(X.Detail, Y.Detail) << What << " round " << I;
    EXPECT_EQ(X.ExcessBefore, Y.ExcessBefore) << What << " round " << I;
    EXPECT_EQ(X.ExcessAfter, Y.ExcessAfter) << What << " round " << I;
    EXPECT_EQ(X.EdgesAdded, Y.EdgesAdded) << What << " round " << I;
    EXPECT_EQ(X.SpillsInserted, Y.SpillsInserted) << What << " round " << I;
  }
}

unsigned excessVsMachine(const URSAResult &R, const MachineModel &M) {
  std::vector<std::pair<ResourceId, unsigned>> Limits = machineResources(M);
  unsigned E = 0;
  for (unsigned I = 0; I != R.FinalRequired.size(); ++I)
    E += R.FinalRequired[I] > Limits[I].second
             ? R.FinalRequired[I] - Limits[I].second
             : 0;
  return E;
}

unsigned sumRequired(const URSAResult &R) {
  unsigned S = 0;
  for (unsigned V : R.FinalRequired)
    S += V;
  return S;
}

/// The differential corpus: tight machines that force multi-round
/// transformation plus an ample machine that converges immediately.
struct Case {
  DependenceDAG DAG;
  MachineModel M;
  std::string Name;
};

std::vector<Case> corpus() {
  std::vector<Case> Out;
  GenOptions G;
  G.Window = 12;
  for (uint64_t Seed : {1ull, 4ull, 9ull}) {
    for (unsigned NI : {30u, 60u}) {
      G.NumInstrs = NI;
      G.Seed = Seed;
      Trace T = generateTrace(G);
      Out.push_back({buildDAG(T), MachineModel::homogeneous(3, 5),
                     "seed" + std::to_string(Seed) + "_n" +
                         std::to_string(NI) + "_3x5"});
      Out.push_back({buildDAG(T), MachineModel::homogeneous(2, 4),
                     "seed" + std::to_string(Seed) + "_n" +
                         std::to_string(NI) + "_2x4"});
    }
  }
  Out.push_back({buildDAG(figure2Trace()), MachineModel::homogeneous(2, 3),
                 "figure2_2x3"});
  Out.push_back({buildDAG(figure2Trace()), MachineModel::homogeneous(4, 8),
                 "figure2_ample"});
  return Out;
}

URSAResult run(const Case &C, unsigned Beam, unsigned Threads,
               uint64_t TieBreakSeed = 0, bool Portfolio = false) {
  URSAOptions O;
  O.BeamWidth = Beam;
  O.Threads = Threads;
  O.TieBreakSeed = TieBreakSeed;
  O.Portfolio = Portfolio;
  return runURSA(C.DAG, C.M, O);
}

uint64_t statValue(const char *Name) {
  for (const obs::StatValue &S : obs::snapshotStats())
    if (S.Name == Name)
      return S.Value;
  return 0;
}

} // namespace

TEST(Beam, WidthOneIsGreedyBitForBit) {
  // The headline differential: --beam 1 must reproduce the greedy driver
  // byte-for-byte over the whole corpus, serial and threaded.
  for (const Case &C : corpus()) {
    URSAResult Greedy = run(C, /*Beam=*/0, /*Threads=*/1);
    for (unsigned Threads : {1u, 4u}) {
      URSAResult K1 = run(C, /*Beam=*/1, Threads);
      expectIdentical(K1, Greedy,
                      C.Name + " threads=" + std::to_string(Threads));
    }
  }
}

TEST(Beam, BitIdenticalAcrossThreadCounts) {
  for (const Case &C : corpus()) {
    URSAResult Serial = run(C, /*Beam=*/4, /*Threads=*/1);
    URSAResult Threaded = run(C, /*Beam=*/4, /*Threads=*/4);
    expectIdentical(Threaded, Serial, C.Name + " beam4");
  }
}

TEST(Beam, RepeatRunsAreDeterministic) {
  for (const Case &C : corpus()) {
    URSAResult A = run(C, /*Beam=*/3, /*Threads=*/4);
    URSAResult B = run(C, /*Beam=*/3, /*Threads=*/4);
    expectIdentical(A, B, C.Name + " repeat");
  }
}

TEST(Beam, NeverWorseThanGreedyOnExcess) {
  // The beam keeps greedy's winner in its candidate pool every round, so
  // its best final state can never carry more over-limit excess.
  for (const Case &C : corpus()) {
    URSAResult Greedy = run(C, /*Beam=*/0, /*Threads=*/1);
    URSAResult Beam = run(C, /*Beam=*/4, /*Threads=*/1);
    EXPECT_LE(excessVsMachine(Beam, C.M), excessVsMachine(Greedy, C.M))
        << C.Name;
    EXPECT_FALSE(Beam.VerifyFailed) << C.Name;
  }
}

TEST(Beam, AmpleMachineNeedsNoWork) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  URSAOptions O;
  O.BeamWidth = 4;
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, O);
  EXPECT_TRUE(R.WithinLimits);
  EXPECT_EQ(R.Rounds, 0u);
  EXPECT_EQ(R.SeqEdgesAdded, 0u);
  EXPECT_EQ(R.CritPathBefore, R.CritPathAfter);
}

TEST(Beam, ExportsBeamStats) {
  obs::resetStats();
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions O;
  O.BeamWidth = 4;
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, O);
  EXPECT_GT(R.Rounds, 0u);
  EXPECT_GT(statValue("ursa.driver.beam.rounds"), 0u);
  EXPECT_GT(statValue("ursa.driver.beam.candidates"), 0u);
  EXPECT_GT(statValue("ursa.driver.beam.admitted"), 0u);
}

TEST(Beam, KernelsFitModestMachinesAtWidthFour) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  URSAOptions O;
  O.BeamWidth = 4;
  for (auto &[Name, T] : kernelSuite()) {
    URSAResult R = runURSA(buildDAG(T), M, O);
    EXPECT_TRUE(R.WithinLimits) << Name;
    EXPECT_FALSE(R.VerifyFailed) << Name;
  }
}

TEST(Portfolio, NeverWorseThanDefaultOrdering) {
  // The portfolio races the configured ordering as one of its racers, so
  // the winner can only match or beat the plain run.
  for (const Case &C : corpus()) {
    URSAResult Greedy = run(C, /*Beam=*/0, /*Threads=*/1);
    URSAResult Port = run(C, /*Beam=*/0, /*Threads=*/1, /*TieBreakSeed=*/0,
                          /*Portfolio=*/true);
    EXPECT_LE(excessVsMachine(Port, C.M), excessVsMachine(Greedy, C.M))
        << C.Name;
    if (excessVsMachine(Port, C.M) == excessVsMachine(Greedy, C.M)) {
      EXPECT_LE(sumRequired(Port), sumRequired(Greedy)) << C.Name;
    }
    EXPECT_FALSE(Port.VerifyFailed) << C.Name;
  }
}

TEST(Portfolio, DeterministicAcrossRunsAndThreads) {
  for (const Case &C : corpus()) {
    URSAResult A = run(C, /*Beam=*/2, /*Threads=*/1, 0, /*Portfolio=*/true);
    URSAResult B = run(C, /*Beam=*/2, /*Threads=*/4, 0, /*Portfolio=*/true);
    expectIdentical(A, B, C.Name + " portfolio");
  }
}

TEST(Portfolio, CountsRacers) {
  obs::resetStats();
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions O;
  O.Portfolio = true;
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, O);
  EXPECT_FALSE(R.VerifyFailed);
  EXPECT_GE(statValue("ursa.driver.portfolio.runs"), 3u);
}

// The satellite-1 regression: permuting the proposal collection order
// (what TieBreakSeed does each round) once livelocked the plateau-winner
// path — an equal-excess FU winner whose edges were all already present
// re-applied as a no-op every round, never advancing the fingerprint, and
// burned MaxRounds without tripping the livelock detector. The fix skips
// fingerprint-preserving candidates during reduction, so every kept round
// makes progress under any proposal order.
TEST(TieBreak, PermutedProposalOrderNeverLivelocks) {
  for (const Case &C : corpus()) {
    for (uint64_t Seed : {1ull, 42ull, 0x5eedull}) {
      URSAResult R = run(C, /*Beam=*/0, /*Threads=*/1, Seed);
      EXPECT_FALSE(R.LivelockDetected) << C.Name << " seed " << Seed;
      for (const std::string &S : R.StopReasons)
        EXPECT_NE(S, "max_rounds") << C.Name << " seed " << Seed;
      // Every kept round must claim progress (edges or spills): a no-op
      // winner would show a round with neither.
      for (const RoundRecord &RR : R.RoundLog)
        EXPECT_TRUE(RR.EdgesAdded || RR.SpillsInserted)
            << C.Name << " seed " << Seed << " round " << RR.Round;
    }
  }
}

TEST(TieBreak, PermutationPreservesAllocationQuality) {
  // Scoring is order-independent; only exact-tie winners may change. The
  // shuffled runs must land on allocations of the same quality class.
  for (const Case &C : corpus()) {
    URSAResult Base = run(C, /*Beam=*/0, /*Threads=*/1, 0);
    for (uint64_t Seed : {7ull, 1234ull}) {
      URSAResult P = run(C, /*Beam=*/0, /*Threads=*/1, Seed);
      EXPECT_EQ(excessVsMachine(P, C.M), excessVsMachine(Base, C.M))
          << C.Name << " seed " << Seed;
      EXPECT_EQ(P.WithinLimits, Base.WithinLimits)
          << C.Name << " seed " << Seed;
    }
  }
}

TEST(TieBreak, SeedZeroIsHistoricalOrder) {
  for (const Case &C : corpus()) {
    URSAResult A = run(C, /*Beam=*/0, /*Threads=*/1, 0);
    URSAResult B = run(C, /*Beam=*/0, /*Threads=*/1, 0);
    expectIdentical(A, B, C.Name + " seed0");
  }
}
