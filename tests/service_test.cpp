//===- tests/service_test.cpp - Compile-service lifecycle -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The persistent compile service, bottom to top: protocol round-trips and
// malformed-input rejection, the in-process CompileService lifecycle
// (admission control, queue-full shedding, deadline expiry against
// FaultInjector-stalled compiles, clean shutdown draining), the Unix-
// socket server with pipelined and concurrent clients, and the acceptance
// bar — service output bit-identical to the direct compileURSA +
// formatCompileText path over a 50-function corpus at worker counts > 1.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "obs/Histogram.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "service/Client.h"
#include "service/CompileService.h"
#include "service/Server.h"
#include "ursa/Compiler.h"
#include "ursa/Report.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ursa;
using namespace ursa::service;

namespace {

/// Source text of a generated trace (deterministic in the seed).
std::string genSource(uint64_t Seed, unsigned NumInstrs = 30,
                      unsigned Window = 8) {
  GenOptions G;
  G.NumInstrs = NumInstrs;
  G.Window = Window;
  G.Seed = Seed;
  return generateTrace(G).str();
}

/// What the service must produce for \p Source: the direct compileURSA +
/// formatCompileText path with matching options.
std::string directText(const std::string &Source, const MachineSpec &Spec) {
  Trace T("direct");
  std::string Err;
  EXPECT_TRUE(parseTrace(Source, T, Err)) << Err;
  MachineModel M = Spec.build();
  URSAOptions UO;
  UO.Threads = 1;
  URSACompileResult R = compileURSA(T, M, UO);
  EXPECT_TRUE(R.Compile.Ok) << R.Compile.Error;
  return formatCompileText("ursa", M, R.Compile);
}

ServiceRequest compileRequest(std::string Id, std::string Source,
                              unsigned Fus = 2, unsigned Regs = 4) {
  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Compile;
  R.Id = std::move(Id);
  R.Source = std::move(Source);
  R.Machine.Fus = Fus;
  R.Machine.Regs = Regs;
  return R;
}

/// Collects responses from worker threads and lets the test block until
/// an expected number arrived.
struct Collector {
  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<ServiceResponse> Got;

  CompileService::ResponseFn sink() {
    return [this](const ServiceResponse &R) {
      std::lock_guard<std::mutex> L(Mu);
      Got.push_back(R);
      Cv.notify_all();
    };
  }
  std::vector<ServiceResponse> waitFor(size_t N) {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait_for(L, std::chrono::seconds(60), [&] { return Got.size() >= N; });
    return Got;
  }
  const ServiceResponse *byId(const std::string &Id) {
    for (const ServiceResponse &R : Got)
      if (R.Id == Id)
        return &R;
    return nullptr;
  }
};

std::string testSocketPath(const char *Tag) {
  return "/tmp/ursa_service_test_" + std::string(Tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, RequestRoundTrips) {
  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Compile;
  R.Id = "req-7";
  R.Source = "a = load x\nstore y, a\n";
  R.Machine.Classed = true;
  R.Machine.IntFus = 3;
  R.Machine.Gprs = 6;
  R.Machine.LatMem = 2;
  R.Machine.Pipelined = true;
  R.Order = "integrated";
  R.Verify = "full";
  R.GuaranteedFit = true;
  R.TimeBudgetMs = 1234;
  R.Threads = 2;
  R.Incremental = 0;
  R.Beam = 4;
  R.Portfolio = true;
  R.DeadlineMs = 500;
  R.StallMs = 9;

  ServiceRequest P;
  Status St = parseRequest(writeRequest(R), P);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P.Op, R.Op);
  EXPECT_EQ(P.Id, R.Id);
  EXPECT_EQ(P.Source, R.Source);
  EXPECT_EQ(P.Machine.Classed, true);
  EXPECT_EQ(P.Machine.IntFus, 3u);
  EXPECT_EQ(P.Machine.Gprs, 6u);
  EXPECT_EQ(P.Machine.LatMem, 2u);
  EXPECT_TRUE(P.Machine.Pipelined);
  EXPECT_EQ(P.Machine.key(), R.Machine.key());
  EXPECT_EQ(P.Order, "integrated");
  EXPECT_EQ(P.Verify, "full");
  EXPECT_TRUE(P.GuaranteedFit);
  EXPECT_EQ(P.TimeBudgetMs, 1234u);
  EXPECT_EQ(P.Threads, 2u);
  EXPECT_EQ(P.Incremental, 0);
  EXPECT_EQ(P.Beam, 4u);
  EXPECT_TRUE(P.Portfolio);
  EXPECT_EQ(P.DeadlineMs, 500u);
  EXPECT_EQ(P.StallMs, 9u);
}

TEST(ServiceProtocol, BeamFieldsDefaultWhenAbsentAndAreBounded) {
  // A v1 request with no beam/portfolio fields keeps the server defaults
  // (0 = server-resolved width, portfolio off) — old clients stay valid.
  ServiceRequest P;
  Status St = parseRequest(
      "{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
      "\"source\":\"a = load x\"}",
      P);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P.Beam, 0u);
  EXPECT_FALSE(P.Portfolio);

  // The wire format omits defaulted fields, so an old server never sees
  // them from a client that didn't set them.
  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Compile;
  R.Source = "a = load x\n";
  std::string Doc = writeRequest(R);
  EXPECT_EQ(Doc.find("\"beam\""), std::string::npos);
  EXPECT_EQ(Doc.find("\"portfolio\""), std::string::npos);

  // Oversized widths are a resource-exhaustion vector and parse as a
  // clean error, not a clamp.
  Status Bad = parseRequest(
      "{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
      "\"source\":\"a = load x\",\"options\":{\"beam\":100}}",
      P);
  EXPECT_FALSE(Bad.isOk());
  EXPECT_NE(Bad.str().find("beam"), std::string::npos) << Bad.str();

  Status Edge = parseRequest(
      "{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
      "\"source\":\"a = load x\",\"options\":{\"beam\":64,"
      "\"portfolio\":true}}",
      P);
  ASSERT_TRUE(Edge.isOk()) << Edge.str();
  EXPECT_EQ(P.Beam, 64u);
  EXPECT_TRUE(P.Portfolio);
}

TEST(ServiceProtocol, ResponseRoundTrips) {
  ServiceResponse R;
  R.Status = ServiceResponse::StatusKind::Ok;
  R.Id = "42";
  R.Text = "; line one\n   0: v0 = load x\n";
  R.Cycles = 17;
  R.SpillOps = 3;
  R.WithinLimits = true;
  R.BudgetExhausted = false;
  R.QueueMs = 1.5;
  R.CompileMs = 20.25;

  ServiceResponse P;
  Status St = parseResponse(writeResponse(R), P);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P.Status, R.Status);
  EXPECT_EQ(P.Id, R.Id);
  EXPECT_EQ(P.Text, R.Text);
  EXPECT_EQ(P.Cycles, 17u);
  EXPECT_EQ(P.SpillOps, 3u);
  EXPECT_TRUE(P.WithinLimits);
  EXPECT_DOUBLE_EQ(P.QueueMs, 1.5);
  EXPECT_DOUBLE_EQ(P.CompileMs, 20.25);

  for (auto K : {ServiceResponse::StatusKind::Shed,
                 ServiceResponse::StatusKind::Deadline,
                 ServiceResponse::StatusKind::Bye}) {
    ServiceResponse E;
    E.Status = K;
    E.Id = "e";
    E.Error = "why";
    ServiceResponse Q;
    ASSERT_TRUE(parseResponse(writeResponse(E), Q).isOk());
    EXPECT_EQ(Q.Status, K) << statusName(K);
    EXPECT_EQ(Q.Error, "why");
  }
}

TEST(ServiceProtocol, MalformedRequestsAreCleanErrors) {
  ServiceRequest R;
  auto Fails = [&](const std::string &Doc) {
    Status St = parseRequest(Doc, R);
    EXPECT_FALSE(St.isOk()) << Doc;
    return St;
  };
  Fails("");
  Fails("not json at all");
  Fails("[1,2,3]");
  Fails("{\"schema\":\"wrong.v9\",\"op\":\"compile\"}");
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"explode\"}");
  // Compile without source.
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
        "\"id\":\"1\"}");
  // Wrong field types.
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
        "\"source\":\"a = load x\",\"options\":{\"threads\":\"many\"}}");
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
        "\"source\":\"a = load x\",\"machine\":{\"fus\":-2}}");
  // A machine that can never fit anything.
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
        "\"source\":\"a = load x\",\"machine\":{\"fus\":0,\"regs\":4}}");
  // Unknown enum values.
  Fails("{\"schema\":\"ursa.service_request.v1\",\"op\":\"compile\","
        "\"source\":\"a = load x\",\"options\":{\"order\":\"sideways\"}}");

  // Parse limits apply: over-deep and over-large documents.
  obs::JsonParseLimits L;
  L.MaxDepth = 4;
  std::string Deep = "{\"schema\":\"ursa.service_request.v1\",\"a\":" +
                     std::string(16, '[') + "1" + std::string(16, ']') + "}";
  EXPECT_FALSE(parseRequest(Deep, R, L).isOk());
  L = obs::JsonParseLimits{};
  L.MaxBytes = 16;
  EXPECT_FALSE(parseRequest("{\"schema\":\"ursa.service_request.v1\"}", R, L)
                   .isOk());

  // Non-compile ops need no source.
  Status St = parseRequest(
      "{\"schema\":\"ursa.service_request.v1\",\"op\":\"ping\"}", R);
  EXPECT_TRUE(St.isOk()) << St.str();
}

//===----------------------------------------------------------------------===//
// In-process service lifecycle
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, NastyIdsRoundTripTheWireFormat) {
  // Caller-chosen ids and trace ids with control characters and
  // non-ASCII UTF-8 must survive writeRequest -> parseRequest and
  // writeResponse -> parseResponse unchanged.
  std::string Nasty = "id \"q\"\\\n\t";
  Nasty += '\x01';
  Nasty += '\x02';
  Nasty += "üñí-標識";

  ServiceRequest R = compileRequest(Nasty, "trace t\n");
  R.TraceId = Nasty + "-trace";
  ServiceRequest R2;
  ASSERT_TRUE(parseRequest(writeRequest(R), R2).isOk());
  EXPECT_EQ(R2.Id, Nasty);
  EXPECT_EQ(R2.TraceId, Nasty + "-trace");

  // The client-stamp override writes the given id without touching R.
  ServiceRequest R3;
  ASSERT_TRUE(parseRequest(writeRequest(R, Nasty + "-stamped"), R3).isOk());
  EXPECT_EQ(R3.TraceId, Nasty + "-stamped");
  EXPECT_EQ(R.TraceId, Nasty + "-trace");

  ServiceResponse Resp;
  Resp.Status = ServiceResponse::StatusKind::Ok;
  Resp.Id = Nasty;
  Resp.TraceId = Nasty;
  Resp.Text = "text\x1f with control";
  ServiceResponse Resp2;
  ASSERT_TRUE(parseResponse(writeResponse(Resp), Resp2).isOk());
  EXPECT_EQ(Resp2.Id, Nasty);
  EXPECT_EQ(Resp2.TraceId, Nasty);
  EXPECT_EQ(Resp2.Text, Resp.Text);
}

TEST(CompileServiceTest, CompilesAndMatchesDirectPath) {
  ServiceConfig Cfg;
  Cfg.Workers = 3;
  CompileService Svc(Cfg);
  Collector Col;

  const unsigned N = 12;
  for (unsigned I = 0; I != N; ++I)
    Svc.handle(compileRequest(std::to_string(I), genSource(I + 1)),
               Col.sink());
  auto Got = Col.waitFor(N);
  ASSERT_EQ(Got.size(), N);

  MachineSpec Spec;
  Spec.Fus = 2;
  Spec.Regs = 4;
  for (unsigned I = 0; I != N; ++I) {
    const ServiceResponse *R = Col.byId(std::to_string(I));
    ASSERT_NE(R, nullptr) << I;
    ASSERT_EQ(R->Status, ServiceResponse::StatusKind::Ok) << R->Error;
    EXPECT_EQ(R->Text, directText(genSource(I + 1), Spec)) << "function " << I;
  }
}

TEST(CompileServiceTest, FiftyFunctionCorpusBitIdenticalWarmAndCold) {
  // The acceptance corpus: 50 distinct functions, compiled twice (cold
  // cache, then warm), at 4 workers. Every response must equal the direct
  // single-threaded path, and the warm pass must equal the cold pass.
  ServiceConfig Cfg;
  Cfg.Workers = 4;
  Cfg.CacheSize = 4096;
  CompileService Svc(Cfg);

  const unsigned N = 50;
  MachineSpec Spec;
  Spec.Fus = 2;
  Spec.Regs = 4;
  std::vector<std::string> Sources;
  for (unsigned I = 0; I != N; ++I)
    Sources.push_back(genSource(100 + I, 24, 8));

  auto RunPass = [&](const char *Tag) {
    Collector Col;
    for (unsigned I = 0; I != N; ++I) {
      ServiceRequest R =
          compileRequest(std::string(Tag) + std::to_string(I), Sources[I]);
      Svc.handle(std::move(R), Col.sink());
    }
    auto Got = Col.waitFor(N);
    EXPECT_EQ(Got.size(), N);
    std::vector<std::string> Texts(N);
    for (unsigned I = 0; I != N; ++I) {
      const ServiceResponse *R = Col.byId(std::string(Tag) + std::to_string(I));
      EXPECT_NE(R, nullptr);
      if (!R)
        continue;
      EXPECT_EQ(R->Status, ServiceResponse::StatusKind::Ok) << R->Error;
      Texts[I] = R->Text;
    }
    return Texts;
  };

  std::vector<std::string> Cold = RunPass("cold");
  std::vector<std::string> Warm = RunPass("warm");
  for (unsigned I = 0; I != N; ++I) {
    EXPECT_EQ(Cold[I], Warm[I]) << "warm pass diverged on function " << I;
    EXPECT_EQ(Cold[I], directText(Sources[I], Spec)) << "function " << I;
  }
}

TEST(CompileServiceTest, BeamAndPortfolioRequestsCompile) {
  // The optional request fields reach the driver: beam and portfolio
  // requests compile cleanly and deterministically (two identical beam
  // requests produce identical text).
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  Collector Col;

  ServiceRequest B1 = compileRequest("beam1", genSource(5));
  B1.Beam = 2;
  ServiceRequest B2 = compileRequest("beam2", genSource(5));
  B2.Beam = 2;
  ServiceRequest Port = compileRequest("port", genSource(5));
  Port.Portfolio = true;
  Svc.handle(std::move(B1), Col.sink());
  Svc.handle(std::move(B2), Col.sink());
  Svc.handle(std::move(Port), Col.sink());
  auto Got = Col.waitFor(3);
  ASSERT_EQ(Got.size(), 3u);
  for (const char *Id : {"beam1", "beam2", "port"}) {
    const ServiceResponse *P = Col.byId(Id);
    ASSERT_NE(P, nullptr) << Id;
    EXPECT_EQ(P->Status, ServiceResponse::StatusKind::Ok) << P->Error;
    EXPECT_FALSE(P->Text.empty()) << Id;
  }
  EXPECT_EQ(Col.byId("beam1")->Text, Col.byId("beam2")->Text);
}

TEST(CompileServiceTest, QueueFullSheds) {
  // One worker, a queue of two, and a compile stalled by the fault
  // injector: the worker is pinned, two requests queue, and everything
  // beyond that is shed with a clean response.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueDepth = 2;
  Cfg.EnableTestHooks = true;
  CompileService Svc(Cfg);
  Collector Col;

  // A register-tight machine guarantees transforming rounds, so StallMs
  // reliably holds the worker.
  ServiceRequest Slow = compileRequest("slow", genSource(1, 40, 12), 2, 2);
  Slow.StallMs = 40;
  Svc.handle(Slow, Col.sink());
  // Give the worker a moment to take the slow job off the queue.
  for (unsigned Spin = 0; Spin != 200 && Svc.counters().InFlight == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Svc.counters().InFlight, 1u) << "stalled compile never started";

  for (unsigned I = 0; I != 2; ++I)
    Svc.handle(compileRequest("q" + std::to_string(I), genSource(2)),
               Col.sink());
  for (unsigned I = 0; I != 3; ++I)
    Svc.handle(compileRequest("over" + std::to_string(I), genSource(2)),
               Col.sink());

  // The three over-capacity requests are answered inline.
  auto Got = Col.waitFor(3);
  unsigned ShedSeen = 0;
  for (const ServiceResponse &R : Got)
    if (R.Status == ServiceResponse::StatusKind::Shed) {
      ++ShedSeen;
      EXPECT_EQ(R.Error, "queue full");
      EXPECT_EQ(R.Id.rfind("over", 0), 0u) << R.Id;
    }
  EXPECT_EQ(ShedSeen, 3u);
  EXPECT_EQ(Svc.counters().Shed, 3u);
  EXPECT_EQ(Svc.counters().QueueDepthPeak, 2u);

  // Everything admitted still completes.
  Got = Col.waitFor(6);
  ASSERT_EQ(Got.size(), 6u);
  for (const char *Id : {"slow", "q0", "q1"}) {
    const ServiceResponse *R = Col.byId(Id);
    ASSERT_NE(R, nullptr) << Id;
    EXPECT_EQ(R->Status, ServiceResponse::StatusKind::Ok) << Id;
  }
}

TEST(CompileServiceTest, DeadlineExpiresInQueue) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestHooks = true;
  CompileService Svc(Cfg);
  Collector Col;

  ServiceRequest Slow = compileRequest("slow", genSource(1, 40, 12), 2, 2);
  Slow.StallMs = 30;
  Svc.handle(Slow, Col.sink());

  // Queued behind a compile that takes many stalled rounds; a 1 ms
  // deadline is long gone by the time the worker frees up.
  ServiceRequest Doomed = compileRequest("doomed", genSource(2));
  Doomed.DeadlineMs = 1;
  Svc.handle(Doomed, Col.sink());

  auto Got = Col.waitFor(2);
  ASSERT_EQ(Got.size(), 2u);
  const ServiceResponse *R = Col.byId("doomed");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Status, ServiceResponse::StatusKind::Deadline);
  EXPECT_NE(R->Error.find("expired while queued"), std::string::npos)
      << R->Error;
  EXPECT_GE(R->QueueMs, 1.0);
  EXPECT_EQ(Svc.counters().DeadlineExpired, 1u);
}

TEST(CompileServiceTest, DeadlineBoundsTheCompileItself) {
  // The remaining deadline is folded into the driver's TimeBudgetMs, so a
  // compile whose rounds are stalled past the deadline stops early and is
  // answered Deadline instead of running to completion.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestHooks = true;
  CompileService Svc(Cfg);
  Collector Col;

  ServiceRequest R = compileRequest("tight", genSource(1, 40, 12), 2, 2);
  R.StallMs = 50;
  R.DeadlineMs = 10;
  Svc.handle(R, Col.sink());

  auto Got = Col.waitFor(1);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Status, ServiceResponse::StatusKind::Deadline);
  EXPECT_NE(Got[0].Error.find("during compilation"), std::string::npos)
      << Got[0].Error;
}

TEST(CompileServiceTest, ShutdownDrainsAdmittedWork) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  CompileService Svc(Cfg);
  Collector Col;

  const unsigned N = 8;
  for (unsigned I = 0; I != N; ++I)
    Svc.handle(compileRequest(std::to_string(I), genSource(I + 1)),
               Col.sink());
  Svc.stop(/*Drain=*/true); // blocks until the queue is empty

  auto Got = Col.waitFor(N);
  ASSERT_EQ(Got.size(), N);
  for (const ServiceResponse &R : Got)
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok)
        << R.Id << ": " << R.Error;

  // Admission is closed now.
  Svc.handle(compileRequest("late", genSource(1)), Col.sink());
  Got = Col.waitFor(N + 1);
  const ServiceResponse *Late = Col.byId("late");
  ASSERT_NE(Late, nullptr);
  EXPECT_EQ(Late->Status, ServiceResponse::StatusKind::Shed);
  EXPECT_EQ(Late->Error, "server shutting down");
}

TEST(CompileServiceTest, StopWithoutDrainShedsTheQueue) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestHooks = true;
  CompileService Svc(Cfg);
  Collector Col;

  ServiceRequest Slow = compileRequest("slow", genSource(1, 40, 12), 2, 2);
  Slow.StallMs = 30;
  Svc.handle(Slow, Col.sink());
  for (unsigned Spin = 0; Spin != 200 && Svc.counters().InFlight == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (unsigned I = 0; I != 3; ++I)
    Svc.handle(compileRequest("q" + std::to_string(I), genSource(2)),
               Col.sink());

  Svc.stop(/*Drain=*/false);
  auto Got = Col.waitFor(4);
  ASSERT_EQ(Got.size(), 4u);
  unsigned ShedSeen = 0;
  for (const ServiceResponse &R : Got)
    if (R.Status == ServiceResponse::StatusKind::Shed) {
      ++ShedSeen;
      EXPECT_EQ(R.Error, "server shutting down");
    }
  // The in-flight compile still finishes; the queued ones are shed.
  EXPECT_EQ(ShedSeen, 3u);
  const ServiceResponse *R = Col.byId("slow");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Status, ServiceResponse::StatusKind::Ok) << R->Error;
}

TEST(CompileServiceTest, ReportCountsAndCaches) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  CompileService Svc(Cfg);
  Collector Col;
  for (unsigned I = 0; I != 4; ++I)
    Svc.handle(compileRequest(std::to_string(I), genSource(1 + (I % 2))),
               Col.sink());
  Col.waitFor(4);

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Svc.reportJSON(), V, Err)) << Err;
  EXPECT_EQ(V.find("schema")->Str, "ursa.service_report.v1");
  const obs::JsonValue *Req = V.find("requests");
  ASSERT_NE(Req, nullptr);
  EXPECT_EQ(Req->find("received")->Num, 4);
  EXPECT_EQ(Req->find("completed")->Num, 4);
  EXPECT_EQ(Req->find("shed")->Num, 0);
  const obs::JsonValue *Caches = V.find("caches");
  ASSERT_NE(Caches, nullptr);
  ASSERT_EQ(Caches->Arr.size(), 1u) << "one machine key -> one cache";
  EXPECT_GT(Caches->Arr[0].find("entries")->Num, 0);
  ASSERT_NE(V.find("latency"), nullptr);
  EXPECT_GT(V.find("latency")->find("total_compile_ms")->Num, 0);
}

//===----------------------------------------------------------------------===//
// Degradation governor
//===----------------------------------------------------------------------===//

TEST(DegradeGovernorTest, TiersEnterOnThresholdsWithHysteresis) {
  DegradeGovernor G(/*Enabled=*/true);
  EXPECT_EQ(G.tier(), 0u);
  EXPECT_EQ(G.lastChangeUs(), 0u);

  // Saturate the EWMA at full occupancy: walks up through every tier.
  uint64_t Now = 1000;
  for (unsigned I = 0; I != 50; ++I)
    G.update(1.0, Now += 1000);
  EXPECT_EQ(G.tier(), 3u);
  EXPECT_GE(G.loadEwma(), DegradeGovernor::UpThreshold[2]);
  EXPECT_EQ(G.entries(1), 1u);
  EXPECT_EQ(G.entries(2), 1u);
  EXPECT_EQ(G.entries(3), 1u);
  EXPECT_EQ(G.transitions(), 3u);
  uint64_t ChangedAt = G.lastChangeUs();
  EXPECT_GT(ChangedAt, 0u);

  // Hovering just below the tier-3 threshold must NOT leave tier 3:
  // the EWMA has to fall a full Hysteresis below it first.
  double JustBelow = DegradeGovernor::UpThreshold[2] - 0.01;
  for (unsigned I = 0; I != 50; ++I)
    G.update(JustBelow, Now += 1000);
  EXPECT_EQ(G.tier(), 3u) << "flapped without hysteresis";
  EXPECT_EQ(G.transitions(), 3u);
  EXPECT_EQ(G.lastChangeUs(), ChangedAt);

  // Draining the queue walks back down and re-stamps the transition.
  for (unsigned I = 0; I != 200; ++I)
    G.update(0.0, Now += 1000);
  EXPECT_EQ(G.tier(), 0u);
  EXPECT_EQ(G.entries(0), 1u);
  EXPECT_GT(G.transitions(), 3u);
  EXPECT_GT(G.lastChangeUs(), ChangedAt);

  // Re-entering tier 1 counts another entry (the walk back down above
  // already passed through it once, so this is the third).
  for (unsigned I = 0; I != 50; ++I)
    G.update(0.6, Now += 1000);
  EXPECT_EQ(G.tier(), 1u);
  EXPECT_EQ(G.entries(1), 3u);
}

TEST(DegradeGovernorTest, DisabledGovernorNeverMoves) {
  DegradeGovernor G(/*Enabled=*/false);
  for (unsigned I = 0; I != 100; ++I)
    G.update(1.0, 1000 * (I + 1));
  EXPECT_EQ(G.tier(), 0u);
  EXPECT_EQ(G.transitions(), 0u);
  EXPECT_EQ(G.lastChangeUs(), 0u);
}

//===----------------------------------------------------------------------===//
// Stats, health, tracing, flight recorder
//===----------------------------------------------------------------------===//

TEST(CompileServiceTest, StatsDocumentCountsEveryRequest) {
  obs::resetHistograms(); // e2e count below must equal this test's compiles
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  CompileService Svc(Cfg);
  Collector Col;
  const unsigned N = 5;
  for (unsigned I = 0; I != N; ++I)
    Svc.handle(compileRequest(std::to_string(I), genSource(1 + (I % 2))),
               Col.sink());
  Col.waitFor(N);

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Svc.statsJSON(), V, Err)) << Err;
  EXPECT_EQ(V.find("schema")->Str, "ursa.service_stats.v1");
  EXPECT_GT(V.find("now_us")->Num, 0);
  EXPECT_EQ(V.find("workers")->Num, 2);
  const obs::JsonValue *Req = V.find("requests");
  ASSERT_NE(Req, nullptr);
  EXPECT_EQ(Req->find("received")->Num, N);
  EXPECT_EQ(Req->find("completed")->Num, N);
  const obs::JsonValue *Queue = V.find("queue");
  ASSERT_NE(Queue, nullptr);
  EXPECT_EQ(Queue->find("depth")->Num, 0);
  const obs::JsonValue *Deg = V.find("degradation");
  ASSERT_NE(Deg, nullptr);
  EXPECT_EQ(Deg->find("tier")->Num, 0);
  ASSERT_TRUE(Deg->find("tier_entries")->isArray());
  EXPECT_EQ(Deg->find("tier_entries")->Arr.size(), 4u);

  // The e2e latency histogram saw exactly this test's compiles.
  const obs::JsonValue *Hs = V.find("histograms");
  ASSERT_TRUE(Hs && Hs->isArray());
  bool FoundE2E = false;
  for (const obs::JsonValue &H : Hs->Arr)
    if (H.find("name")->Str == "ursa.service.e2e_us") {
      FoundE2E = true;
      EXPECT_EQ(uint64_t(H.find("count")->Num), N);
      EXPECT_GT(H.find("p50_us")->Num, 0);
      EXPECT_GE(H.find("p99_us")->Num, H.find("p50_us")->Num);
    }
  EXPECT_TRUE(FoundE2E);

  // No flight ring unless asked for; with it, every record has a trace
  // id and the slowest-retained ones carry reconstructable timelines.
  EXPECT_EQ(V.find("flight"), nullptr);
  ASSERT_TRUE(obs::parseJson(Svc.statsJSON(/*IncludeFlight=*/true), V, Err))
      << Err;
  const obs::JsonValue *Flight = V.find("flight");
  ASSERT_NE(Flight, nullptr);
  const obs::JsonValue *Recs = Flight->find("records");
  ASSERT_TRUE(Recs && Recs->isArray());
  ASSERT_EQ(Recs->Arr.size(), N);
  unsigned Timelines = 0;
  for (const obs::JsonValue &R : Recs->Arr) {
    EXPECT_FALSE(R.find("trace_id")->Str.empty());
    EXPECT_EQ(R.find("status")->Str, "ok");
    if (const obs::JsonValue *Sp = R.find("spans"); Sp && !Sp->Arr.empty())
      ++Timelines;
  }
  EXPECT_GT(Timelines, 0u) << "no request kept a span timeline";
}

TEST(CompileServiceTest, FlightRecordSharesTheRequestTraceId) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  Collector Col;
  ServiceRequest R = compileRequest("traced", genSource(3));
  R.TraceId = "t-unit-00000001";
  Svc.handle(R, Col.sink());
  auto Got = Col.waitFor(1);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].TraceId, "t-unit-00000001") << "trace id not echoed";

  RequestRecord Slowest = Svc.flight().slowest();
  ASSERT_NE(Slowest.Seq, 0u);
  EXPECT_EQ(Slowest.TraceId, "t-unit-00000001");
  EXPECT_EQ(Slowest.Id, "traced");
  // The timeline reconstructs the pipeline stages under that trace id.
  ASSERT_FALSE(Slowest.Spans.empty());
  bool SawParse = false, SawMeasure = false;
  for (const RequestRecord::StageSpan &S : Slowest.Spans) {
    SawParse |= S.Name == "service.parse";
    SawMeasure |= S.Name.rfind("ursa.measure", 0) == 0;
  }
  EXPECT_TRUE(SawParse);
  EXPECT_TRUE(SawMeasure);
  EXPECT_GT(Slowest.TotalMs, 0.0);
}

TEST(CompileServiceTest, HealthReflectsPressure) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Svc.healthJSON(), V, Err)) << Err;
  EXPECT_EQ(V.find("schema")->Str, "ursa.service_health.v1");
  EXPECT_EQ(V.find("status")->Str, "ok");
  ASSERT_NE(V.find("queue_depth"), nullptr);
  ASSERT_NE(V.find("uptime_s"), nullptr);
}

TEST(CompileServiceTest, PrometheusExpositionIsWellFormed) {
  obs::resetHistograms(); // exact bucket counts asserted below
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  Collector Col;
  Svc.handle(compileRequest("p", genSource(4)), Col.sink());
  Col.waitFor(1);

  std::string Text = Svc.statsPrometheus();
  // Untyped counters and gauges with sanitized names...
  EXPECT_NE(Text.find("ursa_service_requests_received"), std::string::npos);
  EXPECT_NE(Text.find("ursa_service_queue_depth"), std::string::npos);
  // ...and histograms in cumulative-bucket form ending at +Inf.
  EXPECT_NE(Text.find("ursa_service_e2e_us_bucket{le=\""), std::string::npos);
  EXPECT_NE(Text.find("ursa_service_e2e_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("ursa_service_e2e_us_sum"), std::string::npos);
  EXPECT_NE(Text.find("ursa_service_e2e_us_count 1"), std::string::npos);
  // Exposition format: every line is "name[{labels}] value" or a comment.
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    ASSERT_NE(Eol, std::string::npos) << "unterminated final line";
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(Line[0]))) << Line;
  }
}

//===----------------------------------------------------------------------===//
// Socket server, end to end
//===----------------------------------------------------------------------===//

TEST(ServiceServer, PipelinedClientMatchesDirectPath) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  std::string Path = testSocketPath("pipelined");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  {
    StatusOr<ServiceClient> COr = ServiceClient::connect(Path);
    ASSERT_TRUE(COr.isOk()) << COr.status().str();
    ServiceClient &Client = *COr;

    // Pipeline: send everything, then collect; responses may arrive in
    // any order and are matched by id.
    const unsigned N = 10;
    for (unsigned I = 0; I != N; ++I)
      ASSERT_TRUE(
          Client.send(compileRequest(std::to_string(I), genSource(I + 1)))
              .isOk());
    std::vector<ServiceResponse> Got(N);
    std::vector<bool> Seen(N, false);
    for (unsigned I = 0; I != N; ++I) {
      ServiceResponse R;
      bool Closed = false;
      ASSERT_TRUE(Client.recv(R, Closed).isOk());
      ASSERT_FALSE(Closed);
      unsigned Idx = unsigned(std::atoi(R.Id.c_str()));
      ASSERT_LT(Idx, N);
      ASSERT_FALSE(Seen[Idx]);
      Seen[Idx] = true;
      Got[Idx] = R;
    }
    MachineSpec Spec;
    Spec.Fus = 2;
    Spec.Regs = 4;
    for (unsigned I = 0; I != N; ++I) {
      ASSERT_EQ(Got[I].Status, ServiceResponse::StatusKind::Ok)
          << Got[I].Error;
      EXPECT_EQ(Got[I].Text, directText(genSource(I + 1), Spec));
    }

    // Ping, report, shutdown over the same connection.
    ServiceRequest Ping;
    Ping.Op = ServiceRequest::OpKind::Ping;
    Ping.Id = "ping";
    ServiceResponse R;
    ASSERT_TRUE(Client.call(Ping, R).isOk());
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok);

    ServiceRequest Report;
    Report.Op = ServiceRequest::OpKind::Report;
    Report.Id = "rep";
    ASSERT_TRUE(Client.call(Report, R).isOk());
    ASSERT_EQ(R.Status, ServiceResponse::StatusKind::Report);
    obs::JsonValue V;
    std::string Err;
    ASSERT_TRUE(obs::parseJson(R.Text, V, Err)) << Err;
    EXPECT_EQ(V.find("schema")->Str, "ursa.service_report.v1");
    EXPECT_EQ(V.find("requests")->find("completed")->Num, N);

    ServiceRequest Bye;
    Bye.Op = ServiceRequest::OpKind::Shutdown;
    Bye.Id = "bye";
    ASSERT_TRUE(Client.call(Bye, R).isOk());
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Bye);
  }
  Runner.join(); // run() returns once the shutdown drains
  EXPECT_NE(::access(Path.c_str(), F_OK), 0) << "socket file not removed";
}

TEST(ServiceServer, ConcurrentClientsAllSucceed) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  std::string Path = testSocketPath("concurrent");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  const unsigned Clients = 4, PerClient = 5;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned CI = 0; CI != Clients; ++CI)
    Threads.emplace_back([&, CI] {
      StatusOr<ServiceClient> COr = ServiceClient::connect(Path);
      if (!COr.isOk()) {
        ++Failures;
        return;
      }
      MachineSpec Spec;
      Spec.Fus = 2;
      Spec.Regs = 4;
      for (unsigned I = 0; I != PerClient; ++I) {
        uint64_t Seed = 1 + (CI * PerClient + I) % 7;
        ServiceResponse R;
        Status St = COr->call(
            compileRequest(std::to_string(CI) + "." + std::to_string(I),
                           genSource(Seed)),
            R);
        if (!St.isOk() || R.Status != ServiceResponse::StatusKind::Ok ||
            R.Text != directText(genSource(Seed), Spec))
          ++Failures;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  Srv.requestStop();
  Runner.join();
}

TEST(ServiceServer, MalformedFrameGetsErrorResponse) {
  ServiceConfig Cfg;
  std::string Path = testSocketPath("malformed");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  {
    StatusOr<UnixSocket> SOr = UnixSocket::connect(Path);
    ASSERT_TRUE(SOr.isOk());
    ASSERT_TRUE(SOr->sendFrame("this is not json").isOk());
    std::string Frame;
    bool Closed = false;
    ASSERT_TRUE(SOr->recvFrame(Frame, Closed).isOk());
    ASSERT_FALSE(Closed);
    ServiceResponse R;
    ASSERT_TRUE(parseResponse(Frame, R).isOk());
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Error);
    EXPECT_FALSE(R.Error.empty());

    // The connection survives a bad request.
    ServiceRequest Ping;
    Ping.Op = ServiceRequest::OpKind::Ping;
    ASSERT_TRUE(SOr->sendFrame(writeRequest(Ping)).isOk());
    ASSERT_TRUE(SOr->recvFrame(Frame, Closed).isOk());
    ASSERT_FALSE(Closed);
    ASSERT_TRUE(parseResponse(Frame, R).isOk());
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok);
  }

  Srv.requestStop();
  Runner.join();
}

TEST(ServiceServer, StatsAndHealthVerbsOverTheWire) {
  obs::resetHistograms();
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  std::string Path = testSocketPath("statsverb");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  {
    StatusOr<ServiceClient> COr = ServiceClient::connect(Path);
    ASSERT_TRUE(COr.isOk()) << COr.status().str();
    ServiceClient &Client = *COr;

    // A compile whose trace id the client stamps for us.
    ServiceResponse CompResp;
    ASSERT_TRUE(Client.call(compileRequest("c1", genSource(5)), CompResp)
                    .isOk());
    ASSERT_EQ(CompResp.Status, ServiceResponse::StatusKind::Ok)
        << CompResp.Error;
    EXPECT_FALSE(CompResp.TraceId.empty())
        << "client did not stamp a trace id";
    EXPECT_EQ(CompResp.TraceId.rfind("t-", 0), 0u) << CompResp.TraceId;

    // stats (json) with the flight ring: the compile's record is there,
    // under the client-stamped trace id, with its stage timeline.
    ServiceRequest SReq;
    SReq.Op = ServiceRequest::OpKind::Stats;
    SReq.Id = "s1";
    SReq.IncludeFlight = true;
    ServiceResponse SResp;
    ASSERT_TRUE(Client.call(SReq, SResp).isOk());
    ASSERT_EQ(SResp.Status, ServiceResponse::StatusKind::Stats);
    obs::JsonValue V;
    std::string Err;
    ASSERT_TRUE(obs::parseJson(SResp.Text, V, Err)) << Err;
    EXPECT_EQ(V.find("schema")->Str, "ursa.service_stats.v1");
    EXPECT_EQ(V.find("requests")->find("completed")->Num, 1);
    const obs::JsonValue *Recs = V.find("flight")->find("records");
    ASSERT_TRUE(Recs && Recs->isArray());
    ASSERT_EQ(Recs->Arr.size(), 1u);
    EXPECT_EQ(Recs->Arr[0].find("trace_id")->Str, CompResp.TraceId);
    const obs::JsonValue *Spans = Recs->Arr[0].find("spans");
    ASSERT_TRUE(Spans && Spans->isArray() && !Spans->Arr.empty())
        << "slowest request lost its timeline";

    // stats (prometheus).
    SReq.Id = "s2";
    SReq.StatsFormat = "prometheus";
    SReq.IncludeFlight = false;
    ASSERT_TRUE(Client.call(SReq, SResp).isOk());
    ASSERT_EQ(SResp.Status, ServiceResponse::StatusKind::Stats);
    EXPECT_NE(SResp.Text.find("ursa_service_e2e_us_count 1"),
              std::string::npos);

    // health.
    ServiceRequest HReq;
    HReq.Op = ServiceRequest::OpKind::Health;
    HReq.Id = "h1";
    ServiceResponse HResp;
    ASSERT_TRUE(Client.call(HReq, HResp).isOk());
    ASSERT_EQ(HResp.Status, ServiceResponse::StatusKind::Stats);
    ASSERT_TRUE(obs::parseJson(HResp.Text, V, Err)) << Err;
    EXPECT_EQ(V.find("schema")->Str, "ursa.service_health.v1");
    EXPECT_EQ(V.find("status")->Str, "ok");
  }

  Srv.requestStop();
  Runner.join();
}

TEST(ServiceServer, ExplicitTraceIdSurvivesTheRoundTrip) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  std::string Path = testSocketPath("traceid");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  {
    StatusOr<ServiceClient> COr = ServiceClient::connect(Path);
    ASSERT_TRUE(COr.isOk());
    // A caller-chosen id (with characters that need JSON escaping) is
    // preserved verbatim, not replaced by a client-stamped one.
    ServiceRequest R = compileRequest("c-esc", genSource(6));
    R.TraceId = "trace \"quoted\"\n\tüñí";
    ServiceResponse Resp;
    ASSERT_TRUE(COr->call(R, Resp).isOk());
    ASSERT_EQ(Resp.Status, ServiceResponse::StatusKind::Ok) << Resp.Error;
    EXPECT_EQ(Resp.TraceId, R.TraceId);
  }

  Srv.requestStop();
  Runner.join();
}

//===----------------------------------------------------------------------===//
// Supervised-retry jitter seeding
//===----------------------------------------------------------------------===//

TEST(RetryJitter, BackoffStaysInsideTheJitterWindow) {
  RetryPolicy P;
  P.BackoffBaseMs = 10;
  P.BackoffMaxMs = 1000;
  EXPECT_EQ(supervisedBackoffMs(P, 0x1234, 0), 0u) << "try 0 never sleeps";
  for (unsigned Try = 1; Try <= 10; ++Try) {
    unsigned Cap = std::min(P.BackoffMaxMs, P.BackoffBaseMs << (Try - 1));
    unsigned D = supervisedBackoffMs(P, 0x1234, Try);
    EXPECT_GE(D, Cap / 2) << "try " << Try;
    EXPECT_LE(D, Cap) << "try " << Try;
  }
  // A zero-cap policy (BackoffBaseMs = 0) never sleeps at all.
  RetryPolicy Z;
  Z.BackoffBaseMs = 0;
  EXPECT_EQ(supervisedBackoffMs(Z, 0x1234, 3), 0u);
}

TEST(RetryJitter, DeterministicPerKeyAndTry) {
  RetryPolicy P;
  for (unsigned Try = 1; Try <= 6; ++Try)
    EXPECT_EQ(supervisedBackoffMs(P, 0xabcdef, Try),
              supervisedBackoffMs(P, 0xabcdef, Try))
        << "try " << Try;
}

TEST(RetryJitter, DistinctClientsDrawDistinctSchedules) {
  // The regression this pins: two clients built from the same RetryPolicy
  // used to draw identical backoff schedules (RNG seeded from Policy.Seed
  // alone), synchronizing their reconnect storms against a restarting
  // server. With instance-tag keying, equal policies and equal trace ids
  // still diverge.
  RetryPolicy P;
  P.BackoffBaseMs = 100;
  P.BackoffMaxMs = 100000;
  const uint64_t KeyA = clientJitterKey(/*InstanceTag=*/1, "t-same-trace");
  const uint64_t KeyB = clientJitterKey(/*InstanceTag=*/2, "t-same-trace");
  EXPECT_NE(KeyA, KeyB);
  bool Diverged = false;
  for (unsigned Try = 1; Try <= 8 && !Diverged; ++Try)
    Diverged = supervisedBackoffMs(P, KeyA, Try) !=
               supervisedBackoffMs(P, KeyB, Try);
  EXPECT_TRUE(Diverged) << "identical schedules across clients";
}

TEST(RetryJitter, TraceIdSeparatesCallsOnOneClient) {
  RetryPolicy P;
  P.BackoffBaseMs = 100;
  P.BackoffMaxMs = 100000;
  const uint64_t KeyA = clientJitterKey(7, "t-00000001-000001");
  const uint64_t KeyB = clientJitterKey(7, "t-00000001-000002");
  EXPECT_NE(KeyA, KeyB);
  bool Diverged = false;
  for (unsigned Try = 1; Try <= 8 && !Diverged; ++Try)
    Diverged = supervisedBackoffMs(P, KeyA, Try) !=
               supervisedBackoffMs(P, KeyB, Try);
  EXPECT_TRUE(Diverged) << "identical schedules across trace ids";
}

TEST(RetryJitter, ConnectedClientsGetUniqueInstanceTags) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  std::string Path = testSocketPath("jitter");
  Server Srv(Path, Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  std::thread Runner([&] { Srv.run(); });

  {
    StatusOr<ServiceClient> A = ServiceClient::connect(Path);
    StatusOr<ServiceClient> B = ServiceClient::connect(Path);
    ASSERT_TRUE(A.isOk() && B.isOk());
    EXPECT_NE(A->instanceTag(), B->instanceTag());
    EXPECT_NE(A->instanceTag(), 0u);
    EXPECT_NE(B->instanceTag(), 0u);
  }

  Srv.requestStop();
  Runner.join();
}
