//===- tests/property_test.cpp - Parameterized invariant sweeps -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module invariants swept over machines, workload shapes and
/// seeds with TEST_P: the measurement's exactness envelope, driver
/// guarantees, dominator correctness against brute force, and interval
/// optimality of the sequential register assignment.
///
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "graph/Dominators.h"
#include "order/Chains.h"
#include "sched/GraphColoring.h"
#include "sched/RegAssign.h"
#include "ursa/Driver.h"
#include "ursa/KillSelection.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ursa;

//===----------------------------------------------------------------------===//
// Driver invariants across machine shapes.
//===----------------------------------------------------------------------===//

namespace {

struct MachineParam {
  const char *Name;
  unsigned Fus, Regs;
};

class DriverInvariants : public ::testing::TestWithParam<MachineParam> {};

} // namespace

TEST_P(DriverInvariants, NeverWorsensAndCertifiesCorrectly) {
  MachineParam MP = GetParam();
  MachineModel M = MachineModel::homogeneous(MP.Fus, MP.Regs);
  GenOptions Opts;
  Opts.NumInstrs = 28;
  Opts.Window = 9;
  for (uint64_t Seed = 1; Seed != 7; ++Seed) {
    Opts.Seed = Seed * 101 + MP.Fus;
    DependenceDAG D0 = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D0);
    HammockForest HF(D0, A);
    std::vector<Measurement> Before = measureAll(D0, A, HF, M);
    auto Limits = machineResources(M);

    URSAResult R = runURSA(D0, M);
    // The transformed DAG stays acyclic (the analysis asserts), and the
    // final requirement never exceeds max(initial, limit).
    DAGAnalysis After(R.DAG);
    for (unsigned I = 0; I != Limits.size(); ++I)
      EXPECT_LE(R.FinalRequired[I],
                std::max(Before[I].MaxRequired, Limits[I].second))
          << "seed " << Opts.Seed;
    // WithinLimits is a real certificate.
    if (R.WithinLimits) {
      for (unsigned I = 0; I != Limits.size(); ++I)
        EXPECT_LE(R.FinalRequired[I], Limits[I].second);
    }
    // Critical path can only have grown.
    EXPECT_GE(R.CritPathAfter, R.CritPathBefore);
  }
}

TEST_P(DriverInvariants, TransformedDagPreservesSemantics) {
  MachineParam MP = GetParam();
  MachineModel M = MachineModel::homogeneous(MP.Fus, MP.Regs);
  GenOptions Opts;
  Opts.NumInstrs = 24;
  Opts.MemOpProb = 0.1;
  RNG InputRng(MP.Fus * 7 + 1);
  for (uint64_t Seed = 50; Seed != 55; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    MemoryState In = randomInputs(T, InputRng);
    ExecResult Want = interpret(T, In);

    URSAResult R = runURSA(buildDAG(T), M);
    // Execute the transformed trace in a topological order of its DAG.
    DAGAnalysis A(R.DAG);
    Trace Linear = R.DAG.trace();
    std::vector<Instruction> Order;
    for (unsigned N : A.topoOrder())
      if (!DependenceDAG::isVirtual(N))
        Order.push_back(R.DAG.trace().instr(DependenceDAG::instrOf(N)));
    Linear.replaceInstructions(std::move(Order));
    EXPECT_TRUE(interpret(Linear, In) == Want) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, DriverInvariants,
    ::testing::Values(MachineParam{"tiny", 1, 3}, MachineParam{"narrow", 2, 4},
                      MachineParam{"mid", 4, 8}, MachineParam{"wide", 8, 12},
                      MachineParam{"regstarved", 6, 4},
                      MachineParam{"fustarved", 2, 16}),
    [](const ::testing::TestParamInfo<MachineParam> &I) {
      return I.param.Name;
    });

//===----------------------------------------------------------------------===//
// Measurement exactness envelope across workload shapes.
//===----------------------------------------------------------------------===//

namespace {

class MeasureSweep
    : public ::testing::TestWithParam<GenOptions::ShapeKind> {};

} // namespace

TEST_P(MeasureSweep, FUWidthMatchesBruteForceOnSmallDags) {
  GenOptions Opts;
  Opts.Shape = GetParam();
  Opts.NumInstrs = 8;
  Opts.NumInputs = 3;
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed != 60 && Checked < 15; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    if (T.size() > 20)
      continue;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR,
                   true};
    Measurement M = measureResource(D, A, HF, Res);
    EXPECT_EQ(M.MaxRequired, bruteForceWidth(M.Reuse.Rel, M.Reuse.Active))
        << "seed " << Seed;
    ++Checked;
  }
  EXPECT_GE(Checked, 5u);
}

TEST_P(MeasureSweep, RegMeasureBoundsTrueWorstCase) {
  GenOptions Opts;
  Opts.Shape = GetParam();
  Opts.NumInstrs = 10;
  Opts.NumInputs = 3;
  Opts.NumOutputs = 1;
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed != 80 && Checked < 15; ++Seed) {
    Opts.Seed = Seed + 1000;
    Trace T = generateTrace(Opts);
    if (T.size() > 18)
      continue;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR,
                   true};
    Measurement M = measureResource(D, A, HF, Res);
    EXPECT_LE(M.MaxRequired, bruteForceMaxLive(D, A)) << "seed " << Seed;
    ++Checked;
  }
  EXPECT_GE(Checked, 5u);
}

TEST_P(MeasureSweep, ExactKillSolverNeverBelowGreedy) {
  GenOptions Opts;
  Opts.Shape = GetParam();
  Opts.NumInstrs = 16;
  for (uint64_t Seed = 1; Seed != 8; ++Seed) {
    Opts.Seed = Seed * 31;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    MeasureOptions Greedy, Exact;
    Exact.KillSolver = 1;
    ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR,
                   true};
    Measurement G = measureResource(D, A, HF, Res, Greedy);
    Measurement E = measureResource(D, A, HF, Res, Exact);
    // Exact minimum cover shares killers at least as aggressively, so
    // its measured width cannot be smaller than greedy's.
    EXPECT_GE(E.MaxRequired, G.MaxRequired) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeasureSweep,
                         ::testing::Values(GenOptions::ShapeKind::Layered,
                                           GenOptions::ShapeKind::Expression,
                                           GenOptions::ShapeKind::Chains),
                         [](const auto &I) {
                           switch (I.param) {
                           case GenOptions::ShapeKind::Layered:
                             return "layered";
                           case GenOptions::ShapeKind::Expression:
                             return "expression";
                           default:
                             return "chains";
                           }
                         });

//===----------------------------------------------------------------------===//
// Dominators against brute force.
//===----------------------------------------------------------------------===//

namespace {

/// Brute-force dominance: A dom B iff every entry->B path visits A.
/// Computed by deleting A and checking reachability.
bool bruteDominates(const DependenceDAG &D, unsigned A, unsigned B) {
  if (A == B)
    return true;
  std::vector<uint8_t> Seen(D.size(), 0);
  std::vector<unsigned> Work{DependenceDAG::EntryNode};
  if (DependenceDAG::EntryNode == A)
    return true;
  Seen[DependenceDAG::EntryNode] = 1;
  while (!Work.empty()) {
    unsigned U = Work.back();
    Work.pop_back();
    if (U == B)
      return false; // reached B without passing A
    for (const auto &[V, K] : D.succs(U)) {
      (void)K;
      if (V != A && !Seen[V]) {
        Seen[V] = 1;
        Work.push_back(V);
      }
    }
  }
  return true;
}

} // namespace

TEST(DominatorsProperty, MatchesBruteForceOnRandomDags) {
  GenOptions Opts;
  Opts.NumInstrs = 14;
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    Opts.Seed = Seed * 17;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    DominatorTree Dom(D, A, /*PostDom=*/false);
    for (unsigned X = 0; X != D.size(); ++X)
      for (unsigned Y = 0; Y != D.size(); ++Y)
        EXPECT_EQ(Dom.dominates(X, Y), bruteDominates(D, X, Y))
            << "seed " << Seed << " pair " << X << "," << Y;
  }
}

TEST(HammocksProperty, FamilyIsLaminar) {
  GenOptions Opts;
  Opts.NumInstrs = 30;
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    Opts.Seed = Seed * 13;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    for (unsigned I = 0; I != HF.size(); ++I)
      for (unsigned J = I + 1; J != HF.size(); ++J) {
        Bitset Inter = HF.hammock(I).Members;
        Inter &= HF.hammock(J).Members;
        if (Inter.none())
          continue;
        // Overlap implies containment (up to the shared boundary node a
        // chain of hammocks legitimately has).
        Bitset IminusJ = HF.hammock(I).Members;
        IminusJ.subtract(HF.hammock(J).Members);
        Bitset JminusI = HF.hammock(J).Members;
        JminusI.subtract(HF.hammock(I).Members);
        EXPECT_TRUE(IminusJ.none() || JminusI.none() || Inter.count() <= 1)
            << "hammocks " << I << " and " << J << " overlap partially";
      }
  }
}

//===----------------------------------------------------------------------===//
// Sequential assignment is optimal interval coloring.
//===----------------------------------------------------------------------===//

namespace {

/// Max overlap of live intervals on the sequential order.
unsigned maxOverlap(const Trace &T) {
  DependenceDAG D = buildDAG(T);
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  unsigned N = T.size();
  std::vector<int> Delta(N + 1, 0);
  for (unsigned Idx = 0; Idx != N; ++Idx) {
    const Instruction &I = T.instr(Idx);
    if (I.dest() < 0)
      continue;
    unsigned End = Idx;
    for (unsigned U : Uses[DependenceDAG::nodeOf(Idx)])
      End = std::max(End, DependenceDAG::instrOf(U));
    ++Delta[Idx];
    --Delta[End]; // same-position reuse allowed, as in the allocator
  }
  int Cur = 0, Best = 0;
  for (unsigned I = 0; I != N; ++I) {
    Cur += Delta[I];
    Best = std::max(Best, Cur);
  }
  return unsigned(Best);
}

} // namespace

TEST(SequentialAssignment, UsesExactlyMaxOverlapRegisters) {
  GenOptions Opts;
  Opts.NumInstrs = 30;
  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    Opts.Seed = Seed * 7;
    Trace T = generateTrace(Opts);
    unsigned Peak = maxOverlap(T);
    if (Peak < 2)
      continue;
    DependenceDAG D = buildDAG(T);
    Schedule Seq = sequentialSchedule(D);
    RegAssignment Fits =
        assignRegisters(D, Seq, MachineModel::homogeneous(1, Peak));
    EXPECT_TRUE(Fits.Ok) << "seed " << Seed << " peak " << Peak;
    RegAssignment Starved =
        assignRegisters(D, Seq, MachineModel::homogeneous(1, Peak - 1));
    EXPECT_FALSE(Starved.Ok)
        << "seed " << Seed << ": interval coloring must be tight";
  }
}
