//===- tests/fleet_test.cpp - Router, ring, and fair-queue tests ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet subsystem under test, bottom up:
//
//  * Ring — consistent-hashing invariants: balanced key spread, ~1/N
//    remap on resize (moved keys all land on the new backend), and
//    successorOrder as a permutation rooted at the home shard.
//  * FairQueue — DRR proportionality (weights 3:1 serve exactly 3:1 over
//    whole rounds), quota refusal, and full-queue displacement of the
//    most-over-share client.
//  * parseHistogramJson — the stats document's sparse bucket encoding
//    round-trips back to the dense snapshot it came from.
//  * Protocol — the Busy status and the router-stamped fields survive a
//    wire round-trip; unknown statuses degrade to Error (the documented
//    legacy mapping for old clients).
//  * RouterService end to end — byte-identical forwarding through one
//    backend, failover across a dead backend, probe-driven readmission,
//    and fleet stats aggregation.
//
//===----------------------------------------------------------------------===//

#include "fleet/FairQueue.h"
#include "fleet/Ring.h"
#include "fleet/RouterService.h"
#include "obs/Histogram.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "service/Client.h"
#include "service/Server.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::fleet;
using namespace ursa::service;

namespace {

std::string genSource(uint64_t Seed) {
  GenOptions G;
  G.NumInstrs = 24;
  G.Window = 8;
  G.Seed = Seed;
  return generateTrace(G).str();
}

ServiceRequest compileRequest(std::string Id, uint64_t Seed) {
  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Compile;
  R.Id = std::move(Id);
  R.Source = genSource(Seed);
  R.Machine.Fus = 2;
  R.Machine.Regs = 4;
  return R;
}

/// A running backend server plus the endpoint string to reach it.
struct TcpServer {
  Server Srv;
  std::thread Runner;
  std::string Endpoint;

  explicit TcpServer(ServiceConfig Cfg) : Srv("tcp:0", Cfg) {
    Status St = Srv.start();
    EXPECT_TRUE(St.isOk()) << St.str();
    Endpoint = "tcp:" + std::to_string(Srv.port());
    Runner = std::thread([this] { Srv.run(); });
  }
  ~TcpServer() {
    Srv.requestStop();
    Runner.join();
  }
};

/// A started RouterService fronted by its own TCP server.
struct RouterFront {
  RouterService Router;
  Server Srv;
  std::thread Runner;
  std::string Endpoint;

  explicit RouterFront(const RouterConfig &Cfg)
      : Router(Cfg), Srv("tcp:0", Router, TransportOpts{}) {
    Status St = Router.start();
    EXPECT_TRUE(St.isOk()) << St.str();
    St = Srv.start();
    EXPECT_TRUE(St.isOk()) << St.str();
    Endpoint = "tcp:" + std::to_string(Srv.port());
    Runner = std::thread([this] { Srv.run(); });
  }
  ~RouterFront() {
    Srv.requestStop();
    Runner.join();
    Router.stop(false);
  }
};

ServiceResponse callOne(const std::string &Endpoint, const ServiceRequest &R) {
  StatusOr<ServiceClient> COr = ServiceClient::connect(Endpoint);
  EXPECT_TRUE(COr.isOk()) << COr.status().str();
  ServiceResponse Resp;
  Status St = COr->call(R, Resp);
  EXPECT_TRUE(St.isOk()) << St.str();
  return Resp;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ring
//===----------------------------------------------------------------------===//

TEST(FleetRing, SpreadsKeysAcrossBackends) {
  Ring R;
  R.build({"b0", "b1", "b2", "b3"}, 64);
  std::array<unsigned, 4> Hits{};
  for (uint64_t K = 0; K != 10000; ++K)
    ++Hits[size_t(R.lookup(Ring::routeKey("2x4", std::to_string(K))))];
  for (unsigned H : Hits) {
    // 64 vnodes keeps every backend within a loose band of its 25% fair
    // share — this guards against degenerate clustering, not variance.
    EXPECT_GT(H, 1000u);
    EXPECT_LT(H, 4500u);
  }
}

TEST(FleetRing, ResizeRemapsAboutOneOverN) {
  Ring Before, After;
  Before.build({"b0", "b1", "b2"}, 64);
  After.build({"b0", "b1", "b2", "b3"}, 64);
  unsigned Moved = 0;
  for (uint64_t K = 0; K != 10000; ++K) {
    uint64_t H = Ring::routeKey("2x4", std::to_string(K));
    int A = Before.lookup(H), B = After.lookup(H);
    if (A != B) {
      ++Moved;
      // Every moved key moves *to* the new backend: the old backends'
      // points never moved, so no key can migrate between them.
      EXPECT_EQ(B, 3);
    }
  }
  // Ideal is 1/4 of the key space; accept a generous band around it.
  EXPECT_GT(Moved, 1000u);
  EXPECT_LT(Moved, 4500u);
}

TEST(FleetRing, SuccessorOrderIsAPermutationFromHome) {
  Ring R;
  R.build({"b0", "b1", "b2", "b3", "b4"}, 32);
  for (uint64_t K = 0; K != 200; ++K) {
    uint64_t H = Ring::routeKey("2x4", std::to_string(K));
    std::vector<uint32_t> Order = R.successorOrder(H);
    ASSERT_EQ(Order.size(), 5u);
    EXPECT_EQ(int(Order[0]), R.lookup(H)) << "home shard first";
    std::vector<bool> Seen(5, false);
    for (uint32_t B : Order) {
      ASSERT_LT(B, 5u);
      EXPECT_FALSE(Seen[B]) << "backend repeated in successor order";
      Seen[B] = true;
    }
  }
}

TEST(FleetRing, RouteKeyIsStableAndInputSensitive) {
  uint64_t K = Ring::routeKey("2x4", "add r1, r2, r3\n");
  EXPECT_EQ(K, Ring::routeKey("2x4", "add r1, r2, r3\n"));
  EXPECT_NE(K, Ring::routeKey("4x8", "add r1, r2, r3\n"));
  EXPECT_NE(K, Ring::routeKey("2x4", "add r1, r2, r4\n"));
}

//===----------------------------------------------------------------------===//
// FairQueue
//===----------------------------------------------------------------------===//

namespace {

FairQueue::Item queueItem(const std::string &Client, std::string Id) {
  FairQueue::Item I;
  I.R.Client = Client;
  I.R.Id = std::move(Id);
  I.Done = [](const ServiceResponse &) {};
  return I;
}

} // namespace

TEST(FleetFairQueue, DrrServesProportionallyToWeight) {
  FairQueue Q(100, ClientPolicy{});
  Q.setPolicy("heavy", {3, 0});
  Q.setPolicy("light", {1, 0});
  for (unsigned I = 0; I != 30; ++I)
    ASSERT_EQ(Q.push(queueItem("heavy", "h" + std::to_string(I)), nullptr),
              FairQueue::Admit::Ok);
  for (unsigned I = 0; I != 10; ++I)
    ASSERT_EQ(Q.push(queueItem("light", "l" + std::to_string(I)), nullptr),
              FairQueue::Admit::Ok);

  // Over whole DRR rounds (quantum = weight, unit cost) service is
  // *exactly* proportional: each round drains 3 heavy + 1 light.
  std::map<std::string, unsigned> Served;
  FairQueue::Item Out;
  for (unsigned I = 0; I != 16; ++I) {
    ASSERT_TRUE(Q.popOne(Out));
    ++Served[Out.R.Client];
  }
  EXPECT_EQ(Served["heavy"], 12u);
  EXPECT_EQ(Served["light"], 4u);

  // Drain the rest: nothing lost, FIFO within a client.
  unsigned Rest = 0;
  for (; Q.popOne(Out); ++Rest)
    ;
  EXPECT_EQ(Rest, 24u);
  EXPECT_EQ(Q.size(), 0u);
}

TEST(FleetFairQueue, QuotaRefusesOnlyTheOffender) {
  FairQueue Q(100, ClientPolicy{});
  Q.setPolicy("greedy", {1, 2});
  EXPECT_EQ(Q.push(queueItem("greedy", "g0"), nullptr), FairQueue::Admit::Ok);
  EXPECT_EQ(Q.push(queueItem("greedy", "g1"), nullptr), FairQueue::Admit::Ok);

  FairQueue::Item Third = queueItem("greedy", "g2");
  EXPECT_EQ(Q.push(std::move(Third), nullptr), FairQueue::Admit::OverQuota);
  // A refused item is NOT consumed: the caller still answers its Done.
  EXPECT_EQ(Third.R.Id, "g2");
  EXPECT_TRUE(bool(Third.Done));

  // The other client is untouched by greedy's quota.
  EXPECT_EQ(Q.push(queueItem("polite", "p0"), nullptr), FairQueue::Admit::Ok);
  EXPECT_EQ(Q.queuedFor("greedy"), 2u);
  EXPECT_EQ(Q.queuedFor("polite"), 1u);

  // Draining one greedy request frees quota for the next arrival.
  FairQueue::Item Out;
  ASSERT_TRUE(Q.popOne(Out));
  while (Out.R.Client != "greedy")
    ASSERT_TRUE(Q.popOne(Out));
  EXPECT_EQ(Q.push(queueItem("greedy", "g3"), nullptr), FairQueue::Admit::Ok);
}

TEST(FleetFairQueue, FullQueueDisplacesTheMostOverShareClient) {
  FairQueue Q(4, ClientPolicy{});
  for (unsigned I = 0; I != 4; ++I)
    ASSERT_EQ(Q.push(queueItem("hog", "hog" + std::to_string(I)), nullptr),
              FairQueue::Admit::Ok);
  ASSERT_EQ(Q.size(), 4u);

  // A well-behaved newcomer displaces the hog's NEWEST request — the
  // oldest kept its place in line; the latest marginal arrival pays.
  FairQueue::Item Victim;
  EXPECT_EQ(Q.push(queueItem("polite", "p0"), &Victim),
            FairQueue::Admit::DisplacedOther);
  EXPECT_EQ(Victim.R.Client, "hog");
  EXPECT_EQ(Victim.R.Id, "hog3");
  EXPECT_EQ(Q.size(), 4u) << "one out, one in";
  EXPECT_EQ(Q.queuedFor("hog"), 3u);
  EXPECT_EQ(Q.queuedFor("polite"), 1u);

  // When the arrival itself is the most over share, IT is refused — the
  // hog cannot displace anyone (including itself) to grow further.
  FairQueue::Item More = queueItem("hog", "hog4");
  EXPECT_EQ(Q.push(std::move(More), &Victim), FairQueue::Admit::OverShare);
  EXPECT_EQ(More.R.Id, "hog4") << "refused item left intact";
  EXPECT_EQ(Q.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Histogram JSON round-trip (the fleet roll-up's parser)
//===----------------------------------------------------------------------===//

URSA_HISTO(RoundTripHisto, "test.fleet.roundtrip_us",
           "fleet_test round-trip fixture");

namespace {

/// The exact shape CompileService's writeHistogramJson emits.
std::string histogramToJson(const obs::HistogramSnapshot &H) {
  obs::JsonWriter W;
  W.beginObject();
  W.kv("name", H.Name);
  W.kv("desc", H.Desc);
  W.kv("count", H.Count);
  W.kv("sum_us", H.Sum);
  W.kv("max_us", H.Max);
  W.kv("p50_us", H.percentile(0.50));
  W.kv("p90_us", H.percentile(0.90));
  W.kv("p99_us", H.percentile(0.99));
  W.key("buckets").beginArray();
  for (unsigned I = 0; I != obs::Histogram::NumBuckets; ++I) {
    if (!H.Buckets[I])
      continue;
    W.beginObject();
    W.kv("le_us", obs::Histogram::bucketHi(I));
    W.kv("count", H.Buckets[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

} // namespace

TEST(FleetHistogramJson, SparseBucketsRoundTripToTheDenseSnapshot) {
  obs::setStatsEnabled(true);
  obs::resetHistograms();
  // Exact buckets, octave buckets, and the overflow bucket all at once.
  for (uint64_t V : {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull, 123456ull,
                     (1ull << 30), (1ull << 39)})
    RoundTripHisto.record(V);
  obs::HistogramSnapshot Orig = RoundTripHisto.snapshot();

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(histogramToJson(Orig), Doc, Err)) << Err;
  obs::HistogramSnapshot Back;
  ASSERT_TRUE(parseHistogramJson(Doc, Back));

  EXPECT_EQ(Back.Name, Orig.Name);
  EXPECT_EQ(Back.Count, Orig.Count);
  EXPECT_EQ(Back.Sum, Orig.Sum);
  EXPECT_EQ(Back.Max, Orig.Max);
  ASSERT_EQ(Back.Buckets.size(), Orig.Buckets.size());
  for (unsigned I = 0; I != obs::Histogram::NumBuckets; ++I)
    EXPECT_EQ(Back.Buckets[I], Orig.Buckets[I]) << "bucket " << I;
  obs::resetHistograms();
}

TEST(FleetHistogramJson, RejectsDocumentsThatAreNotHistograms) {
  for (const char *Bad : {
           "{}",                                   // nothing
           "{\"name\":\"x\"}",                     // no buckets
           "{\"name\":\"x\",\"buckets\":7}",       // buckets not an array
           "[1,2,3]",                              // not an object
       }) {
    obs::JsonValue Doc;
    std::string Err;
    ASSERT_TRUE(obs::parseJson(Bad, Doc, Err)) << Bad << ": " << Err;
    obs::HistogramSnapshot Out;
    EXPECT_FALSE(parseHistogramJson(Doc, Out)) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Protocol: Busy + router-stamped fields on the wire
//===----------------------------------------------------------------------===//

TEST(FleetProtocol, BusyResponseRoundTripsWithRouterFields) {
  ServiceResponse R;
  R.Status = ServiceResponse::StatusKind::Busy;
  R.Id = "req-7";
  R.TraceId = "t-abc";
  R.Backend = "tcp:127.0.0.1:9001";
  R.Error = "backend lost mid-request; resubmit";
  R.QueueMs = 3.5;

  ServiceResponse Back;
  ASSERT_TRUE(parseResponse(writeResponse(R), Back).isOk());
  EXPECT_EQ(Back.Status, ServiceResponse::StatusKind::Busy);
  EXPECT_EQ(Back.Id, "req-7");
  EXPECT_EQ(Back.TraceId, "t-abc");
  EXPECT_EQ(Back.Backend, "tcp:127.0.0.1:9001");
  EXPECT_EQ(Back.Error, "backend lost mid-request; resubmit");
  EXPECT_DOUBLE_EQ(Back.QueueMs, 3.5);
  EXPECT_STREQ(statusName(ServiceResponse::StatusKind::Busy),
               "busy_retry_later");
}

TEST(FleetProtocol, ClientIdentityRoundTripsInRequests) {
  ServiceRequest R = compileRequest("id-1", 42);
  R.Client = "ci-shard-3";
  ServiceRequest Back;
  ASSERT_TRUE(parseRequest(writeRequest(R), Back).isOk());
  EXPECT_EQ(Back.Client, "ci-shard-3");
  EXPECT_EQ(Back.Source, R.Source);

  // An empty client is omitted from the wire entirely (old servers never
  // see the field).
  R.Client.clear();
  EXPECT_EQ(writeRequest(R).find("\"client\""), std::string::npos);
}

TEST(FleetProtocol, UnknownStatusesDegradeToError) {
  // The legacy mapping: a pre-fleet client parsing "busy_retry_later" (or
  // any future status) must land on Error, never crash — mirrored here by
  // feeding the current parser a status it does not know.
  ServiceResponse R;
  R.Status = ServiceResponse::StatusKind::Ok;
  R.Id = "x";
  std::string Doc = writeResponse(R);
  size_t At = Doc.find("\"ok\"");
  ASSERT_NE(At, std::string::npos);
  Doc.replace(At, 4, "\"status_from_the_future\"");
  ServiceResponse Back;
  ASSERT_TRUE(parseResponse(Doc, Back).isOk());
  EXPECT_EQ(Back.Status, ServiceResponse::StatusKind::Error);
}

//===----------------------------------------------------------------------===//
// RouterService end to end
//===----------------------------------------------------------------------===//

TEST(FleetRouter, ByteIdenticalThroughOneBackend) {
  ServiceConfig Cfg;
  TcpServer Backend(Cfg);

  RouterConfig RC;
  RC.Backends.push_back({Backend.Endpoint, "b0"});
  RC.Workers = 2;
  RC.ProbeIntervalMs = 100;
  RouterFront Front(RC);

  // The tentpole invariant: a router fronting one backend is invisible —
  // every compile's Text (the ursa_cc-identical output) matches a direct
  // connection byte for byte, over a 50-function corpus.
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    ServiceRequest R = compileRequest("s" + std::to_string(Seed), Seed);
    ServiceResponse Direct = callOne(Backend.Endpoint, R);
    ServiceResponse Routed = callOne(Front.Endpoint, R);
    ASSERT_EQ(Direct.Status, ServiceResponse::StatusKind::Ok) << Direct.Error;
    ASSERT_EQ(Routed.Status, ServiceResponse::StatusKind::Ok) << Routed.Error;
    EXPECT_EQ(Routed.Text, Direct.Text) << "seed " << Seed;
    EXPECT_EQ(Routed.Cycles, Direct.Cycles);
    EXPECT_EQ(Routed.SpillOps, Direct.SpillOps);
    EXPECT_EQ(Routed.Backend, "b0") << "router stamps shard placement";
    EXPECT_TRUE(Direct.Backend.empty());
  }

  RouterService::Counters C = Front.Router.counters();
  EXPECT_EQ(C.Received, 50u);
  EXPECT_EQ(C.Completed, 50u);
  EXPECT_EQ(C.Failovers, 0u);
}

TEST(FleetRouter, FailsOverWhenABackendDies) {
  ServiceConfig Cfg;
  TcpServer Alive(Cfg);
  auto Dead = std::make_optional<TcpServer>(Cfg);

  RouterConfig RC;
  RC.Backends.push_back({Alive.Endpoint, "alive"});
  RC.Backends.push_back({Dead->Endpoint, "dead"});
  RC.Workers = 2;
  RC.ProbeIntervalMs = 50;
  RC.FailThreshold = 2;
  RouterFront Front(RC);

  Dead.reset(); // kill one backend under the router

  // Every request still succeeds: keys homed on the dead backend fail
  // over to its ring successor (a dial failure proves not-started).
  for (uint64_t Seed = 100; Seed != 130; ++Seed) {
    ServiceResponse Resp =
        callOne(Front.Endpoint, compileRequest("f" + std::to_string(Seed),
                                               Seed));
    ASSERT_EQ(Resp.Status, ServiceResponse::StatusKind::Ok) << Resp.Error;
    EXPECT_EQ(Resp.Backend, "alive");
  }

  // The dead backend was ejected (by demand or by the prober).
  std::vector<BackendPool::Info> Infos = Front.Router.pool().snapshot();
  ASSERT_EQ(Infos.size(), 2u);
  EXPECT_TRUE(Infos[0].Up);
  EXPECT_FALSE(Infos[1].Up);
  EXPECT_GE(Infos[1].Ejections, 1u);
}

TEST(FleetRouter, OneGoodProbeReadmitsAnEjectedBackend) {
  ServiceConfig Cfg;
  TcpServer Backend(Cfg);

  RouterConfig RC;
  RC.Backends.push_back({Backend.Endpoint, "b0"});
  RC.ProbeIntervalMs = 10000; // keep the prober out of the way
  RouterFront Front(RC);

  Front.Router.pool().markDown(0);
  ASSERT_FALSE(Front.Router.pool().isUp(0));

  // The backend is alive; a single successful health probe readmits it.
  Front.Router.pool().probeAllOnce();
  EXPECT_TRUE(Front.Router.pool().isUp(0));
  std::vector<BackendPool::Info> Infos = Front.Router.pool().snapshot();
  EXPECT_GE(Infos[0].Ejections, 1u);
  EXPECT_GE(Infos[0].Readmissions, 1u);
  EXPECT_EQ(Infos[0].LastHealth, "ok");
}

TEST(FleetRouter, StatsVerbAggregatesTheFleet) {
  ServiceConfig Cfg;
  TcpServer B0(Cfg), B1(Cfg);

  RouterConfig RC;
  RC.Backends.push_back({B0.Endpoint, "b0"});
  RC.Backends.push_back({B1.Endpoint, "b1"});
  RC.Workers = 2;
  RC.Clients["ci"] = {3, 16};
  RouterFront Front(RC);

  for (uint64_t Seed = 200; Seed != 210; ++Seed) {
    ServiceRequest R = compileRequest("a" + std::to_string(Seed), Seed);
    R.Client = "ci";
    ASSERT_EQ(callOne(Front.Endpoint, R).Status,
              ServiceResponse::StatusKind::Ok);
  }

  ServiceRequest SR;
  SR.Op = ServiceRequest::OpKind::Stats;
  SR.Id = "stats";
  ServiceResponse Resp = callOne(Front.Endpoint, SR);
  ASSERT_EQ(Resp.Status, ServiceResponse::StatusKind::Stats);

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Resp.Text, Doc, Err)) << Err;
  const obs::JsonValue *Schema = Doc.find("schema");
  ASSERT_TRUE(Schema && Schema->isString());
  EXPECT_EQ(Schema->Str, "ursa.service_stats.v1")
      << "the fleet document keeps the single-server schema";

  const obs::JsonValue *Reqs = Doc.find("requests");
  ASSERT_TRUE(Reqs && Reqs->isObject());
  const obs::JsonValue *Completed = Reqs->find("completed");
  ASSERT_TRUE(Completed && Completed->isNumber());
  EXPECT_GE(Completed->Num, 10.0) << "backend counters are summed";

  const obs::JsonValue *Fleet = Doc.find("fleet");
  ASSERT_TRUE(Fleet && Fleet->isObject()) << "fleet section present";
  const obs::JsonValue *Total = Fleet->find("backends_total");
  ASSERT_TRUE(Total && Total->isNumber());
  EXPECT_EQ(Total->Num, 2.0);
  const obs::JsonValue *Up = Fleet->find("backends_up");
  ASSERT_TRUE(Up && Up->isNumber());
  EXPECT_EQ(Up->Num, 2.0);
  const obs::JsonValue *Backends = Fleet->find("backends");
  ASSERT_TRUE(Backends && Backends->isArray());
  EXPECT_EQ(Backends->Arr.size(), 2u);
  uint64_t Forwarded = 0;
  for (const obs::JsonValue &B : Backends->Arr)
    if (const obs::JsonValue *F = B.find("forwarded"); F && F->isNumber())
      Forwarded += uint64_t(F->Num);
  EXPECT_EQ(Forwarded, 10u);
  const obs::JsonValue *Clients = Fleet->find("clients");
  ASSERT_TRUE(Clients && Clients->isArray());
  bool SawCi = false;
  for (const obs::JsonValue &C : Clients->Arr)
    if (const obs::JsonValue *N = C.find("name"); N && N->Str == "ci")
      SawCi = true;
  EXPECT_TRUE(SawCi) << "configured client policies are reported";

  // The health verb rolls up too.
  ServiceRequest HR;
  HR.Op = ServiceRequest::OpKind::Health;
  HR.Id = "health";
  ServiceResponse HResp = callOne(Front.Endpoint, HR);
  ASSERT_EQ(HResp.Status, ServiceResponse::StatusKind::Stats);
  obs::JsonValue HDoc;
  ASSERT_TRUE(obs::parseJson(HResp.Text, HDoc, Err)) << Err;
  const obs::JsonValue *HS = HDoc.find("status");
  ASSERT_TRUE(HS && HS->isString());
  EXPECT_EQ(HS->Str, "ok");
}

TEST(FleetRouter, ShardPlacementIsDeterministic) {
  ServiceConfig Cfg;
  TcpServer B0(Cfg), B1(Cfg), B2(Cfg);

  RouterConfig RC;
  RC.Backends.push_back({B0.Endpoint, "b0"});
  RC.Backends.push_back({B1.Endpoint, "b1"});
  RC.Backends.push_back({B2.Endpoint, "b2"});
  RC.Workers = 2;
  RouterFront Front(RC);

  // The same (machine, source) lands on the same shard every time —
  // the property that keeps per-shard measurement caches warm.
  std::map<uint64_t, std::string> Placement;
  for (int Round = 0; Round != 2; ++Round)
    for (uint64_t Seed = 300; Seed != 315; ++Seed) {
      ServiceResponse Resp = callOne(
          Front.Endpoint, compileRequest("p" + std::to_string(Seed), Seed));
      ASSERT_EQ(Resp.Status, ServiceResponse::StatusKind::Ok) << Resp.Error;
      ASSERT_FALSE(Resp.Backend.empty());
      auto [It, New] = Placement.emplace(Seed, Resp.Backend);
      if (!New) {
        EXPECT_EQ(It->second, Resp.Backend) << "seed " << Seed;
      }
    }

  // With 15 distinct functions and 3 backends, placement should actually
  // shard (no single backend owns everything).
  std::map<std::string, unsigned> PerBackend;
  for (auto &[Seed, B] : Placement)
    ++PerBackend[B];
  EXPECT_GE(PerBackend.size(), 2u);
}
