//===- tests/kernels2_test.cpp - Extended kernel corpus --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "ursa/Compiler.h"
#include "ursa/Measure.h"
#include "vliw/Simulator.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Fir, ComputesConvolution) {
  Trace T = firTrace(3, 2);
  MemoryState In;
  int64_t C[3] = {1, 2, 3}, X[4] = {10, 20, 30, 40};
  for (unsigned I = 0; I != 3; ++I)
    In["c" + std::to_string(I)] = Value::ofInt(C[I]);
  for (unsigned I = 0; I != 4; ++I)
    In["x" + std::to_string(I)] = Value::ofInt(X[I]);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["y0"].I, 1 * 10 + 2 * 20 + 3 * 30);
  EXPECT_EQ(R.Memory["y1"].I, 1 * 20 + 2 * 30 + 3 * 40);
}

TEST(Fir, SharedCoefficientsRaiseRegisterDemand) {
  // Coefficients live across every output point; more points cannot
  // lower the worst case.
  auto RegReq = [](const Trace &T) {
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR,
                   true};
    return measureResource(D, A, HF, Res).MaxRequired;
  };
  EXPECT_GE(RegReq(firTrace(4, 6)), RegReq(firTrace(4, 2)));
  EXPECT_GE(RegReq(firTrace(4, 2)), 4u) << "all taps coexist";
}

TEST(PrefixSum, ComputesInclusiveScan) {
  Trace T = prefixSumTrace(5);
  MemoryState In;
  for (unsigned I = 0; I != 5; ++I)
    In["x" + std::to_string(I)] = Value::ofInt(I + 1);
  ExecResult R = interpret(T, In);
  int64_t Acc = 0;
  for (unsigned I = 0; I != 5; ++I) {
    Acc += I + 1;
    EXPECT_EQ(R.Memory["s" + std::to_string(I)].I, Acc);
  }
}

TEST(PrefixSum, IsSerialByConstruction) {
  DependenceDAG D = buildDAG(prefixSumTrace(10));
  DAGAnalysis A(D);
  // The accumulation chain dominates: critical path ~ number of adds.
  EXPECT_GE(A.criticalPathLength(), 10u);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(D, A, HF, Res);
  // Loads and stores off the spine still give some width, but far less
  // than the op count.
  EXPECT_LT(M.MaxRequired, 12u);
}

TEST(FftStage, MatchesComplexArithmetic) {
  Trace T = fftStageTrace(4); // 2 butterflies
  MemoryState In;
  auto SetC = [&](const std::string &Base, unsigned P, double Re,
                  double Im) {
    In[Base + "r" + std::to_string(P)] = Value::ofFloat(Re);
    In[Base + "i" + std::to_string(P)] = Value::ofFloat(Im);
  };
  SetC("w", 0, 1.0, 0.0); // w=1
  SetC("a", 0, 1.0, 2.0);
  SetC("b", 0, 3.0, -1.0);
  SetC("w", 1, 0.0, -1.0); // w=-i
  SetC("a", 1, 0.5, 0.5);
  SetC("b", 1, 2.0, 0.0);
  ExecResult R = interpret(T, In);
  // Pair 0: t = b -> out = a+b, a-b.
  EXPECT_DOUBLE_EQ(R.Memory["or0"].F, 4.0);
  EXPECT_DOUBLE_EQ(R.Memory["oi0"].F, 1.0);
  EXPECT_DOUBLE_EQ(R.Memory["pr0"].F, -2.0);
  EXPECT_DOUBLE_EQ(R.Memory["pi0"].F, 3.0);
  // Pair 1: t = -i * 2 = -2i -> out = (0.5, -1.5), (0.5, 2.5).
  EXPECT_DOUBLE_EQ(R.Memory["or1"].F, 0.5);
  EXPECT_DOUBLE_EQ(R.Memory["oi1"].F, -1.5);
  EXPECT_DOUBLE_EQ(R.Memory["pr1"].F, 0.5);
  EXPECT_DOUBLE_EQ(R.Memory["pi1"].F, 2.5);
}

TEST(Matvec4, ComputesRowDotProducts) {
  Trace T = matvec4Trace(2);
  MemoryState In;
  for (unsigned J = 0; J != 4; ++J)
    In["v" + std::to_string(J)] = Value::ofInt(J + 1);
  for (unsigned R = 0; R != 2; ++R)
    for (unsigned J = 0; J != 4; ++J)
      In["m" + std::to_string(R) + std::to_string(J)] =
          Value::ofInt((R + 1) * 10 + J);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["r0"].I, 10 * 1 + 11 * 2 + 12 * 3 + 13 * 4);
  EXPECT_EQ(R.Memory["r1"].I, 20 * 1 + 21 * 2 + 22 * 3 + 23 * 4);
}

TEST(NewKernels, AllVerifyAndCompileDifferentially) {
  MachineModel M = MachineModel::homogeneous(3, 6);
  RNG InputRng(77);
  for (Trace T : {firTrace(4, 4), prefixSumTrace(8), fftStageTrace(4),
                  matvec4Trace(2)}) {
    EXPECT_TRUE(verifyTrace(T).empty()) << T.name();
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << T.name() << ": " << R.Compile.Error;
    MemoryState In = randomInputs(T, InputRng);
    SimResult Got = simulate(*R.Compile.Prog, In);
    ASSERT_TRUE(Got.Ok) << T.name() << ": " << Got.Error;
    EXPECT_TRUE(Got.Exec == interpret(T, In)) << T.name();
  }
}
