#!/bin/sh
# Smoke test: ursa_top renders a fresh, zero-request server cleanly.
#
# A just-started ursa_served has zero completed requests, empty latency
# histograms, and no flight records — every derived quantity (rates,
# averages, percentiles) must render as a number, never "nan"/"inf",
# and the one-shot poll must exit 0. Pins the satellite-3 contract that
# non-finite values are clamped at the JSON-writer chokepoint and every
# rate in the stats document is guarded against zero denominators.
#
# Usage: ursa_top_smoke.sh <ursa_served> <ursa_top>
set -eu

SERVED="$1"
TOP="$2"
SOCK="/tmp/ursa_top_smoke_$$.sock"
OUT="/tmp/ursa_top_smoke_$$.out"

cleanup() {
  [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
  [ -n "${SRV_PID:-}" ] && wait "$SRV_PID" 2>/dev/null || true
  rm -f "$SOCK" "$OUT"
}
trap cleanup EXIT INT TERM

"$SERVED" --socket "$SOCK" --workers 1 &
SRV_PID=$!

# Wait for the socket to appear (the server creates it before accepting).
I=0
while [ ! -S "$SOCK" ]; do
  I=$((I + 1))
  if [ "$I" -gt 100 ]; then
    echo "FAIL: server socket never appeared" >&2
    exit 1
  fi
  sleep 0.05
done

# One poll against the zero-request server, --flight included so the
# empty flight recorder renders too.
"$TOP" --connect "$SOCK" --once --flight >"$OUT" 2>&1 || {
  echo "FAIL: ursa_top --once exited non-zero" >&2
  cat "$OUT" >&2
  exit 1
}

# The render must carry the section headers...
grep -q "uptime" "$OUT" || { echo "FAIL: no uptime line" >&2; cat "$OUT" >&2; exit 1; }
# ...and no unclamped non-finite value anywhere.
if grep -iE '(^|[^a-z])(nan|inf)([^a-z]|$)' "$OUT"; then
  echo "FAIL: non-finite value rendered" >&2
  cat "$OUT" >&2
  exit 1
fi

echo "PASS"
