//===- tests/flightrecorder_test.cpp - FlightRecorder unit tests ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/FlightRecorder.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace ursa;
using namespace ursa::service;

namespace {

RequestRecord makeRecord(const std::string &Id, const std::string &Status,
                         double TotalMs, bool WithSpans = true) {
  RequestRecord R;
  R.Id = Id;
  R.TraceId = "t-" + Id;
  R.Machine = "4x8";
  R.Status = Status;
  R.QueueMs = 0.1;
  R.CompileMs = TotalMs - 0.1;
  R.TotalMs = TotalMs;
  if (WithSpans) {
    R.Spans.push_back({"service.parse", "service", 10, 100});
    R.Spans.push_back({"ursa.measure", "ursa", 120, 400});
  }
  return R;
}

size_t timelineCount(const FlightRecorder &F) {
  size_t N = 0;
  for (const RequestRecord &R : F.snapshot())
    if (!R.SpansTrimmed && !R.Spans.empty())
      ++N;
  return N;
}

} // namespace

TEST(FlightRecorderTest, RingIsBoundedAndSeqMonotonic) {
  FlightRecorder F(4, 2);
  for (int I = 0; I != 10; ++I) {
    std::string Id = "r";
    Id += std::to_string(I);
    F.record(makeRecord(Id, "ok", 1.0 + I));
  }
  EXPECT_EQ(F.size(), 4u);
  EXPECT_EQ(F.capacity(), 4u);
  std::vector<RequestRecord> Snap = F.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  // Oldest first, and Seq keeps counting across evictions.
  EXPECT_EQ(Snap.front().Id, "r6");
  EXPECT_EQ(Snap.back().Id, "r9");
  for (size_t I = 1; I != Snap.size(); ++I)
    EXPECT_EQ(Snap[I].Seq, Snap[I - 1].Seq + 1);
  EXPECT_EQ(Snap.back().Seq, 10u);
}

TEST(FlightRecorderTest, SlowNRetentionTrimsTheFastest) {
  FlightRecorder F(32, 2);
  F.record(makeRecord("fast", "ok", 1.0));
  F.record(makeRecord("medium", "ok", 5.0));
  // Both slots taken; a slower request displaces the fastest holder.
  F.record(makeRecord("slow", "ok", 9.0));
  std::vector<RequestRecord> Snap = F.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_TRUE(Snap[0].SpansTrimmed);
  EXPECT_TRUE(Snap[0].Spans.empty());
  EXPECT_FALSE(Snap[1].SpansTrimmed);
  EXPECT_FALSE(Snap[2].SpansTrimmed);
  // The summary row survives the trim.
  EXPECT_EQ(Snap[0].Id, "fast");
  EXPECT_DOUBLE_EQ(Snap[0].TotalMs, 1.0);

  // A request faster than every holder loses its own spans instead.
  F.record(makeRecord("faster", "ok", 0.5));
  Snap = F.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_TRUE(Snap[3].SpansTrimmed);
  EXPECT_EQ(timelineCount(F), 2u);
}

TEST(FlightRecorderTest, FailuresAlwaysKeepTimelines) {
  FlightRecorder F(32, 1);
  F.record(makeRecord("ok1", "ok", 50.0));
  for (const char *Status : {"error", "deadline", "shed"})
    F.record(makeRecord(Status, Status, 0.1));
  // One ok holder plus all three failures keep their spans, regardless
  // of SlowN and of how fast the failures were.
  EXPECT_EQ(timelineCount(F), 4u);
  for (const RequestRecord &R : F.snapshot())
    EXPECT_FALSE(R.SpansTrimmed) << R.Id;
}

TEST(FlightRecorderTest, SlowestReturnsTheSlowestRetained) {
  FlightRecorder F(32, 4);
  EXPECT_EQ(F.slowest().Seq, 0u); // empty: sentinel record
  F.record(makeRecord("a", "ok", 2.0));
  F.record(makeRecord("b", "ok", 7.0));
  F.record(makeRecord("c", "ok", 4.0));
  RequestRecord S = F.slowest();
  EXPECT_EQ(S.Id, "b");
  EXPECT_DOUBLE_EQ(S.TotalMs, 7.0);
  ASSERT_EQ(S.Spans.size(), 2u);
  EXPECT_EQ(S.Spans[0].Name, "service.parse");
}

TEST(FlightRecorderTest, DumpJsonRoundTrips) {
  FlightRecorder F(8, 1);
  RequestRecord R = makeRecord("req-1", "ok", 3.5);
  R.Rounds = 4;
  R.CacheHits = 10;
  R.CacheMisses = 2;
  F.record(std::move(R));
  F.record(makeRecord("req-2", "error", 0.2));

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(F.dumpJson(), Doc, Err)) << Err;
  const obs::JsonValue *Schema = Doc.find("schema");
  ASSERT_TRUE(Schema && Schema->isString());
  EXPECT_EQ(Schema->Str, "ursa.flight_record.v1");
  const obs::JsonValue *Recs = Doc.find("records");
  ASSERT_TRUE(Recs && Recs->isArray());
  ASSERT_EQ(Recs->Arr.size(), 2u);

  const obs::JsonValue &First = Recs->Arr[0];
  EXPECT_EQ(First.find("id")->Str, "req-1");
  EXPECT_EQ(First.find("trace_id")->Str, "t-req-1");
  EXPECT_EQ(First.find("status")->Str, "ok");
  EXPECT_DOUBLE_EQ(First.find("total_ms")->Num, 3.5);
  EXPECT_EQ(uint64_t(First.find("rounds")->Num), 4u);
  EXPECT_EQ(uint64_t(First.find("cache_hits")->Num), 10u);
  const obs::JsonValue *Spans = First.find("spans");
  ASSERT_TRUE(Spans && Spans->isArray());
  ASSERT_EQ(Spans->Arr.size(), 2u);
  EXPECT_EQ(Spans->Arr[1].find("name")->Str, "ursa.measure");
  EXPECT_EQ(uint64_t(Spans->Arr[1].find("dur_us")->Num), 400u);

  const obs::JsonValue &Second = Recs->Arr[1];
  EXPECT_EQ(Second.find("status")->Str, "error");
  ASSERT_TRUE(Second.find("spans"));
}

TEST(FlightRecorderTest, TimelinesOnlySkipsSummaryRows) {
  FlightRecorder F(8, 1);
  F.record(makeRecord("keep", "ok", 9.0));
  F.record(makeRecord("trimmed", "ok", 1.0)); // loses its spans to SlowN=1
  F.record(makeRecord("no-spans", "ok", 2.0, /*WithSpans=*/false));

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(F.dumpJson(/*TimelinesOnly=*/true), Doc, Err))
      << Err;
  const obs::JsonValue *Recs = Doc.find("records");
  ASSERT_TRUE(Recs && Recs->isArray());
  ASSERT_EQ(Recs->Arr.size(), 1u);
  EXPECT_EQ(Recs->Arr[0].find("id")->Str, "keep");

  // The full dump still carries every summary row.
  ASSERT_TRUE(obs::parseJson(F.dumpJson(), Doc, Err)) << Err;
  EXPECT_EQ(Doc.find("records")->Arr.size(), 3u);
}

TEST(FlightRecorderTest, ZeroCapacityClampsToOne) {
  FlightRecorder F(0, 0);
  EXPECT_EQ(F.capacity(), 1u);
  F.record(makeRecord("a", "ok", 1.0));
  F.record(makeRecord("b", "ok", 2.0));
  EXPECT_EQ(F.size(), 1u);
  EXPECT_EQ(F.snapshot().front().Id, "b");
}
