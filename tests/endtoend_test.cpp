//===- tests/endtoend_test.cpp - Differential compilation tests -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest property in the suite: every pipeline (URSA and the
/// three baselines), on every machine and every program tried, must emit
/// a VLIW program whose simulated observable state matches the reference
/// interpreter exactly — memory bit-for-bit and branch directions in
/// source order. Parameterized over machine shapes.
///
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "sched/Pipelines.h"
#include "ursa/Compiler.h"
#include "vliw/Simulator.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

struct MachineCase {
  const char *Name;
  unsigned Fus, Regs;
};

class DifferentialTest : public ::testing::TestWithParam<MachineCase> {};

void expectMatch(const Trace &T, const MachineModel &M,
                 const CompileResult &R, const std::string &Tag) {
  ASSERT_TRUE(R.Ok) << Tag << ": " << R.Error;
  ASSERT_TRUE(R.Prog.has_value()) << Tag;
  RNG InputRng(0xABCDEF ^ T.size());
  MemoryState In = randomInputs(T, InputRng);
  ExecResult Want = interpret(T, In);
  SimResult Got = simulate(*R.Prog, In);
  ASSERT_TRUE(Got.Ok) << Tag << ": " << Got.Error;
  EXPECT_TRUE(Got.Exec == Want) << Tag << ": observable state diverged";
}

} // namespace

TEST_P(DifferentialTest, KernelsAllPipelines) {
  MachineCase MC = GetParam();
  MachineModel M = MachineModel::homogeneous(MC.Fus, MC.Regs);
  for (auto &[Name, T] : kernelSuite()) {
    expectMatch(T, M, compilePrepass(T, M), Name + std::string("/prepass"));
    expectMatch(T, M, compilePostpass(T, M), Name + std::string("/postpass"));
    expectMatch(T, M, compileIntegrated(T, M),
                Name + std::string("/integrated"));
    expectMatch(T, M, compileURSA(T, M).Compile,
                Name + std::string("/ursa"));
  }
}

TEST_P(DifferentialTest, RandomTracesAllPipelines) {
  MachineCase MC = GetParam();
  MachineModel M = MachineModel::homogeneous(MC.Fus, MC.Regs);
  GenOptions Opts;
  Opts.NumInstrs = 36;
  Opts.Window = 10;
  Opts.MemOpProb = 0.1;
  Opts.BranchProb = 0.08;
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    Opts.Seed = Seed * 977 + MC.Fus;
    Trace T = generateTrace(Opts);
    std::string Tag = "seed " + std::to_string(Opts.Seed);
    expectMatch(T, M, compilePrepass(T, M), Tag + "/prepass");
    expectMatch(T, M, compilePostpass(T, M), Tag + "/postpass");
    expectMatch(T, M, compileIntegrated(T, M), Tag + "/integrated");
    expectMatch(T, M, compileURSA(T, M).Compile, Tag + "/ursa");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, DifferentialTest,
    ::testing::Values(MachineCase{"wide", 8, 16}, MachineCase{"mid", 4, 8},
                      MachineCase{"narrow", 2, 6},
                      MachineCase{"regstarved", 4, 4},
                      MachineCase{"fustarved", 1, 12}),
    [](const ::testing::TestParamInfo<MachineCase> &I) {
      return I.param.Name;
    });

TEST(EndToEnd, URSAWithLatencies) {
  MachineModel M = MachineModel::homogeneous(4, 8).withLatencies(1, 4, 2);
  for (auto &[Name, T] : kernelSuite()) {
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << Name;
    RNG InputRng(7);
    MemoryState In = randomInputs(T, InputRng);
    SimResult Got = simulate(*R.Compile.Prog, In);
    ASSERT_TRUE(Got.Ok) << Name << ": " << Got.Error;
    EXPECT_TRUE(Got.Exec == interpret(T, In)) << Name;
  }
}

TEST(EndToEnd, URSAClassedMachine) {
  MachineModel M = MachineModel::classed(2, 2, 2, 8, 6);
  for (Trace T : {mixedClassTrace(3), butterflyTrace(2)}) {
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << R.Compile.Error;
    RNG InputRng(11);
    MemoryState In = randomInputs(T, InputRng);
    SimResult Got = simulate(*R.Compile.Prog, In);
    ASSERT_TRUE(Got.Ok) << Got.Error;
    EXPECT_TRUE(Got.Exec == interpret(T, In));
  }
}

TEST(EndToEnd, URSAFitsAssignmentWithoutExtraSpillsWhenWithinLimits) {
  // When the allocation phase certifies the requirements, the assignment
  // phase should not need emergency spills.
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (auto &[Name, T] : kernelSuite()) {
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << Name;
    if (R.AllocWithinLimits)
      EXPECT_EQ(R.Compile.AssignSpillRounds, 0u) << Name;
  }
}

TEST(EndToEnd, BranchyTracesPreserveBranchLog) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  GenOptions Opts;
  Opts.NumInstrs = 30;
  Opts.BranchProb = 0.3;
  for (uint64_t Seed = 50; Seed != 60; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok);
    RNG InputRng(Seed);
    MemoryState In = randomInputs(T, InputRng);
    ExecResult Want = interpret(T, In);
    SimResult Got = simulate(*R.Compile.Prog, In);
    ASSERT_TRUE(Got.Ok) << Got.Error;
    EXPECT_EQ(Got.Exec.BranchLog, Want.BranchLog) << "seed " << Seed;
  }
}
