//===- tests/cfg_test.cpp - CFG front end and trace formation -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"
#include "cfg/CFGParser.h"
#include "cfg/TraceFormation.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// A loop summing i = n..1 into acc, with a cold error-ish side block.
const char *LoopSource = R"(
func sum {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  a2 = add a, i
  k  = ldi 1
  i2 = sub i, k
  store acc, a2
  store i, i2
  c  = cmplt k, i2   # keep looping while 1 < i2
  br c ? loop:0.9 : cool
block cool:
  a3 = load acc
  t  = ldi 100
  c2 = cmplt t, a3   # overflow-ish check
  br c2 ? hot : exit
block hot:
  h = ldi -1
  store flag, h
  jmp exit
block exit:
  a4 = load acc
  i3 = load i
  f  = add a4, i3
  store result, f
  ret
}
)";

MemoryState inputs(int64_t N) {
  MemoryState In;
  In["i"] = Value::ofInt(N);
  return In;
}

} // namespace

TEST(CFGParser, ParsesTheLoop) {
  CFGFunction F;
  std::string Err;
  ASSERT_TRUE(parseCFG(LoopSource, F, Err)) << Err;
  EXPECT_EQ(F.name(), "sum");
  ASSERT_EQ(F.numBlocks(), 5u);
  EXPECT_EQ(F.block(0).Name, "entry");
  EXPECT_EQ(F.blockByName("loop"), 1);
  EXPECT_EQ(F.block(1).Term.Kind, Terminator::CondBr);
  EXPECT_DOUBLE_EQ(F.block(1).Term.TakenProb, 0.9);
  EXPECT_EQ(F.block(4).Term.Kind, Terminator::Ret);
  EXPECT_TRUE(F.verify().empty());
}

TEST(CFGParser, RoundTripsThroughPrinter) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  CFGFunction F2;
  std::string Err;
  ASSERT_TRUE(parseCFG(F.str(), F2, Err)) << Err << "\n" << F.str();
  EXPECT_EQ(F.str(), F2.str());
}

TEST(CFGParser, Rejections) {
  CFGFunction F;
  std::string Err;
  EXPECT_FALSE(parseCFG("x = ldi 1\n", F, Err)); // no func header
  EXPECT_FALSE(parseCFG("func f {\n}\n", F, Err)); // no blocks
  EXPECT_FALSE(parseCFG("func f {\nblock a:\n  ret\nblock a:\n  ret\n}\n", F,
                        Err)); // duplicate block
  EXPECT_FALSE(parseCFG("func f {\nblock a:\n  jmp nowhere\n}\n", F, Err));
  EXPECT_FALSE(parseCFG("func f {\nblock a:\n  x = ldi 1\n}\n", F, Err))
      << "missing terminator must be rejected";
  EXPECT_FALSE(
      parseCFG("func f {\nblock a:\n  br q ? a : a\n}\n", F, Err))
      << "undefined branch condition";
  EXPECT_FALSE(parseCFG("func f {\nblock a:\n  ret\n  x = ldi 1\n}\n", F,
                        Err))
      << "code after terminator";
}

TEST(CFG, SuccessorsAndPredecessors) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  EXPECT_EQ(F.successors(0), std::vector<unsigned>{1u});
  std::vector<unsigned> LoopSuccs = F.successors(1);
  ASSERT_EQ(LoopSuccs.size(), 2u);
  // loop's preds: entry and itself.
  std::vector<unsigned> LoopPreds = F.predecessors(1);
  ASSERT_EQ(LoopPreds.size(), 2u);
  EXPECT_EQ(F.successors(4), std::vector<unsigned>{});
}

TEST(CFG, FrequencyEstimation) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  std::vector<double> Freq = estimateBlockFrequencies(F);
  EXPECT_DOUBLE_EQ(Freq[0], 1.0);
  // loop frequency = 1 / (1 - 0.9) = 10.
  EXPECT_NEAR(Freq[1], 10.0, 1e-6);
  // cool runs once per function execution.
  EXPECT_NEAR(Freq[2], 1.0, 1e-6);
  // exit: from cool (0.5 fall) + hot (0.5 taken -> jmp) = 1.
  EXPECT_NEAR(Freq[4], 1.0, 1e-6);
}

TEST(CFG, InterpreterRunsTheLoop) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  CFGExecResult R = interpretCFG(F, inputs(5));
  ASSERT_TRUE(R.Ok) << R.Error;
  // acc sums 5+4+3+2 (loop exits when i2 <= 1), result = acc + final i.
  EXPECT_EQ(R.Memory["acc"].I, 5 + 4 + 3 + 2);
  EXPECT_EQ(R.Memory["result"].I, 14 + 1);
  EXPECT_EQ(R.Path.front(), 0u);
  EXPECT_EQ(R.Path.back(), 4u);
}

TEST(CFG, InterpreterFuelsOutOnInfiniteLoop) {
  CFGFunction F = parseCFGOrDie("func spin {\nblock a:\n  jmp a\n}\n");
  CFGExecResult R = interpretCFG(F, {}, /*Fuel=*/50);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fuel"), std::string::npos);
}

TEST(TraceFormation, CoversAllBlocksExactlyOnce) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  TraceSet TS = formTraces(F);
  std::vector<int> Seen(F.numBlocks(), 0);
  for (const FormedTrace &FT : TS.Traces)
    for (unsigned B : FT.Blocks)
      ++Seen[B];
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    EXPECT_EQ(Seen[B], 1) << "block " << B;
    EXPECT_GE(TS.TraceOf[B], 0);
  }
}

TEST(TraceFormation, TransfersLandOnHeads) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  TraceSet TS = formTraces(F);
  for (const FormedTrace &FT : TS.Traces) {
    for (const TraceExit &E : FT.SideExits)
      EXPECT_GE(TS.HeadTraceOf[E.TargetBlock], 0)
          << "side exit into the middle of a trace";
    if (FT.FallthroughBlock >= 0)
      EXPECT_GE(TS.HeadTraceOf[unsigned(FT.FallthroughBlock)], 0);
  }
  // Entry heads its trace.
  EXPECT_GE(TS.HeadTraceOf[0], 0);
}

TEST(TraceFormation, HotLoopSeedsItsOwnTrace) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  TraceSet TS = formTraces(F);
  // The loop block (freq 10) cannot be absorbed (two predecessors), so it
  // must head a trace.
  EXPECT_GE(TS.HeadTraceOf[1], 0);
}

TEST(TraceFormation, FormedTracesVerify) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  for (const FormedTrace &FT : formTraces(F).Traces) {
    EXPECT_TRUE(verifyTrace(FT.Code).empty()) << FT.Code.str();
    EXPECT_FALSE(FT.Blocks.empty());
  }
}

TEST(CFGCompiler, DifferentialAgainstInterpreter) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  MachineModel M = MachineModel::homogeneous(2, 5);
  for (auto *Compile : {&compilePrepass, &compilePostpass,
                        &compileIntegrated}) {
    CompiledCFG C = compileCFG(F, M, *Compile);
    ASSERT_TRUE(C.Ok) << C.Error;
    for (int64_t N : {0, 1, 2, 7, 30}) {
      CFGExecResult Want = interpretCFG(F, inputs(N));
      CFGExecResult Got = runCompiledCFG(F, C, inputs(N));
      ASSERT_TRUE(Want.Ok && Got.Ok) << Got.Error;
      EXPECT_EQ(Got.Memory, Want.Memory) << "n=" << N;
      EXPECT_EQ(Got.Path, Want.Path) << "n=" << N;
    }
  }
}

TEST(CFGCompiler, URSADifferentialAcrossMachines) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  for (auto [Fus, Regs] :
       {std::pair<unsigned, unsigned>{1, 4}, {2, 4}, {4, 8}}) {
    MachineModel M = MachineModel::homogeneous(Fus, Regs);
    CompiledCFG C = compileCFGWithURSA(F, M);
    ASSERT_TRUE(C.Ok) << C.Error;
    for (int64_t N : {0, 3, 12}) {
      CFGExecResult Want = interpretCFG(F, inputs(N));
      CFGExecResult Got = runCompiledCFG(F, C, inputs(N));
      ASSERT_TRUE(Got.Ok) << Got.Error;
      EXPECT_EQ(Got.Memory, Want.Memory)
          << M.describe() << " n=" << N;
      EXPECT_EQ(Got.Path, Want.Path) << M.describe() << " n=" << N;
    }
  }
}

TEST(CFGCompiler, ColdPathTaken) {
  // Force the rarely-taken 'hot' block (acc > 100) and check the flag.
  CFGFunction F = parseCFGOrDie(LoopSource);
  MachineModel M = MachineModel::homogeneous(2, 6);
  CompiledCFG C = compileCFGWithURSA(F, M);
  ASSERT_TRUE(C.Ok) << C.Error;
  CFGExecResult Want = interpretCFG(F, inputs(20)); // sum ~ 209 > 100
  ASSERT_TRUE(Want.Ok);
  ASSERT_EQ(Want.Memory["flag"].I, -1);
  CFGExecResult Got = runCompiledCFG(F, C, inputs(20));
  ASSERT_TRUE(Got.Ok) << Got.Error;
  EXPECT_EQ(Got.Memory, Want.Memory);
}

TEST(CFGCompiler, DiamondFunction) {
  const char *Src = R"(
func absdiff {
block entry:
  a = load a
  b = load b
  c = cmplt a, b
  br c ? less:0.3 : geq
block less:
  a1 = load a
  b1 = load b
  d1 = sub b1, a1
  store out, d1
  jmp done
block geq:
  a2 = load a
  b2 = load b
  d2 = sub a2, b2
  store out, d2
  jmp done
block done:
  ret
}
)";
  CFGFunction F = parseCFGOrDie(Src);
  MachineModel M = MachineModel::homogeneous(2, 4);
  CompiledCFG C = compileCFGWithURSA(F, M);
  ASSERT_TRUE(C.Ok) << C.Error;
  for (auto [A, B] : {std::pair<int64_t, int64_t>{3, 9}, {9, 3}, {4, 4}}) {
    MemoryState In;
    In["a"] = Value::ofInt(A);
    In["b"] = Value::ofInt(B);
    CFGExecResult Want = interpretCFG(F, In);
    CFGExecResult Got = runCompiledCFG(F, C, In);
    ASSERT_TRUE(Want.Ok && Got.Ok) << Got.Error;
    EXPECT_EQ(Got.Memory, Want.Memory);
    EXPECT_EQ(Want.Memory["out"].I, A > B ? A - B : B - A);
  }
}
