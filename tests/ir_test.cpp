//===- tests/ir_test.cpp - IR parser/verifier/interpreter tests -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Trace.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Opcode, TableIsConsistent) {
  for (unsigned I = 0; I != numOpcodes(); ++I) {
    Opcode Op = Opcode(I);
    const OpcodeInfo &Info = opcodeInfo(Op);
    EXPECT_NE(Info.Mnemonic, nullptr);
    EXPECT_LE(Info.NumSrcs, 3u);
    Opcode Back;
    ASSERT_TRUE(opcodeByMnemonic(Info.Mnemonic, Back));
    EXPECT_EQ(Back, Op);
  }
}

TEST(Opcode, UnknownMnemonicRejected) {
  Opcode Op;
  EXPECT_FALSE(opcodeByMnemonic("frobnicate", Op));
}

TEST(Opcode, Categories) {
  EXPECT_TRUE(isMemoryOp(Opcode::Load));
  EXPECT_TRUE(isMemoryOp(Opcode::Store));
  EXPECT_TRUE(isMemoryOp(Opcode::Br));
  EXPECT_FALSE(isMemoryOp(Opcode::Add));
  EXPECT_TRUE(isBranch(Opcode::Br));
  EXPECT_FALSE(isBranch(Opcode::Store));
  EXPECT_TRUE(isSpillOp(Opcode::SpillLoad));
  EXPECT_TRUE(isSpillOp(Opcode::SpillStore));
  EXPECT_FALSE(isSpillOp(Opcode::Load));
}

TEST(Parser, ParsesStraightLineProgram) {
  Trace T;
  std::string Err;
  ASSERT_TRUE(parseTrace("x = load a\n"
                         "y = load b\n"
                         "s = add x, y   # comment\n"
                         "\n"
                         "store c, s\n",
                         T, Err))
      << Err;
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T.instr(0).opcode(), Opcode::Load);
  EXPECT_EQ(T.instr(2).opcode(), Opcode::Add);
  EXPECT_EQ(T.instr(3).opcode(), Opcode::Store);
  EXPECT_EQ(T.numVRegs(), 3u);
  EXPECT_EQ(T.numSymbols(), 3u);
  EXPECT_TRUE(verifyTrace(T).empty());
}

TEST(Parser, ParsesImmediatesAndBranches) {
  Trace T;
  std::string Err;
  ASSERT_TRUE(parseTrace("k = ldi -42\n"
                         "f = fldi 2.5\n"
                         "c = cmplt k, k\n"
                         "br c\n",
                         T, Err))
      << Err;
  EXPECT_EQ(T.instr(0).intImm(), -42);
  EXPECT_DOUBLE_EQ(T.instr(1).fltImm(), 2.5);
  EXPECT_EQ(T.instr(3).opcode(), Opcode::Br);
}

TEST(Parser, RejectsUndefinedRegister) {
  Trace T;
  std::string Err;
  EXPECT_FALSE(parseTrace("s = add x, y\n", T, Err));
  EXPECT_NE(Err.find("undefined register"), std::string::npos);
}

TEST(Parser, RejectsRedefinition) {
  Trace T;
  std::string Err;
  EXPECT_FALSE(parseTrace("x = ldi 1\nx = ldi 2\n", T, Err));
  EXPECT_NE(Err.find("redefined"), std::string::npos);
}

TEST(Parser, RejectsSpillOpcodes) {
  Trace T;
  std::string Err;
  EXPECT_FALSE(parseTrace("x = spld slot0\n", T, Err));
  EXPECT_NE(Err.find("compiler-internal"), std::string::npos);
}

TEST(Parser, RejectsArityErrors) {
  Trace T;
  std::string Err;
  EXPECT_FALSE(parseTrace("x = ldi 1\ny = add x\n", T, Err));
  Trace T2;
  EXPECT_FALSE(parseTrace("x = ldi 1\ny = neg x, x\n", T2, Err));
  Trace T3;
  EXPECT_FALSE(parseTrace("ldi 5\n", T3, Err)); // missing destination
  Trace T4;
  EXPECT_FALSE(parseTrace("x = ldi 1\ny = br x\n", T4, Err)); // br has no dest
}

TEST(Parser, RoundTripsThroughPrinter) {
  std::string Src = "x = load a\n"
                    "k = ldi 3\n"
                    "y = mul x, k\n"
                    "store a, y\n"
                    "br y\n";
  Trace T = parseTraceOrDie(Src);
  Trace T2 = parseTraceOrDie(T.str());
  EXPECT_EQ(T.str(), T2.str());
}

TEST(Verifier, CatchesDomainMismatch) {
  Trace T;
  int X = T.emitLoad("a");              // int value
  Instruction I(Opcode::FAdd);          // float op fed an int operand
  I.setDomain(Domain::Float);
  I.setDest(T.newVReg(Domain::Float));
  I.setOperand(0, X);
  I.setOperand(1, X);
  T.append(I);
  std::vector<std::string> Problems = verifyTrace(T);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("domain"), std::string::npos);
}

TEST(Verifier, CatchesUseBeforeDef) {
  Trace T;
  int X = T.newVReg(Domain::Int); // never defined before use
  Instruction I(Opcode::Neg);
  I.setDest(T.newVReg(Domain::Int));
  I.setOperand(0, X);
  T.append(I);
  EXPECT_FALSE(verifyTrace(T).empty());
}

TEST(Interpreter, BasicArithmetic) {
  Trace T = parseTraceOrDie("a = load in\n"
                            "b = ldi 10\n"
                            "s = add a, b\n"
                            "d = div s, b\n"
                            "store out, d\n");
  MemoryState In;
  In["in"] = Value::ofInt(90);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["out"].I, 10);
}

TEST(Interpreter, DivisionByZeroIsZero) {
  Trace T = parseTraceOrDie("a = ldi 5\n"
                            "z = ldi 0\n"
                            "d = div a, z\n"
                            "r = rem a, z\n"
                            "s = add d, r\n"
                            "store out, s\n");
  ExecResult R = interpret(T);
  EXPECT_EQ(R.Memory["out"].I, 0);
}

TEST(Interpreter, ShiftsMaskAmount) {
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "k = ldi 65\n" // masked to 1
                            "s = shl a, k\n"
                            "store out, s\n");
  EXPECT_EQ(interpret(T).Memory["out"].I, 2);
}

TEST(Interpreter, BranchLogRecordsDirections) {
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "z = ldi 0\n"
                            "br a\n"
                            "br z\n"
                            "br a\n");
  ExecResult R = interpret(T);
  ASSERT_EQ(R.BranchLog.size(), 3u);
  EXPECT_EQ(R.BranchLog[0], 1);
  EXPECT_EQ(R.BranchLog[1], 0);
  EXPECT_EQ(R.BranchLog[2], 1);
}

TEST(Interpreter, MemoryOrderingWithinTrace) {
  Trace T = parseTraceOrDie("a = ldi 7\n"
                            "store x, a\n"
                            "b = load x\n"
                            "c = add b, b\n"
                            "store x, c\n");
  EXPECT_EQ(interpret(T).Memory["x"].I, 14);
}

TEST(Interpreter, FloatPath) {
  Trace T = parseTraceOrDie("a = fload fa\n"
                            "b = fldi 0.5\n"
                            "m = fmul a, b\n"
                            "i = cvtfi m\n"
                            "store out, i\n");
  MemoryState In;
  In["fa"] = Value::ofFloat(9.0);
  EXPECT_EQ(interpret(T, In).Memory["out"].I, 4); // 4.5 truncated
}

TEST(Interpreter, SelectAndCompare) {
  Trace T = parseTraceOrDie("a = ldi 3\n"
                            "b = ldi 5\n"
                            "c = cmplt a, b\n"
                            "s = sel c, a, b\n"
                            "store out, s\n");
  EXPECT_EQ(interpret(T).Memory["out"].I, 3);
}

TEST(Value, BitExactFloatEquality) {
  EXPECT_TRUE(Value::ofFloat(1.5) == Value::ofFloat(1.5));
  EXPECT_FALSE(Value::ofFloat(0.0) == Value::ofFloat(-0.0)); // bit-exact
  EXPECT_FALSE(Value::ofInt(1) == Value::ofFloat(1.0));
}

TEST(Trace, BuilderEmitsVerifiableCode) {
  Trace T("builder");
  int A = T.emitLoad("a");
  int B = T.emitLoadImm(4);
  int C = T.emitOp(Opcode::Mul, A, B);
  int D = T.emitOp(Opcode::Sel, C, A, B);
  T.emitStore("o", D);
  T.emitBranch(C);
  EXPECT_TRUE(verifyTrace(T).empty());
  EXPECT_EQ(T.size(), 6u);
}

TEST(Trace, SymbolInterningIsStable) {
  Trace T;
  int A = T.internSymbol("x");
  int B = T.internSymbol("y");
  EXPECT_EQ(T.internSymbol("x"), A);
  EXPECT_NE(A, B);
  EXPECT_EQ(T.symbolName(A), "x");
}
