//===- tests/matching_scale_test.cpp - Iterative matcher equivalence ------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The matching engines were converted from recursive DFS to explicit-stack
// iterative form (an augmenting path through a k-node chain recursed k
// deep and overflowed the thread stack on production-size traces). These
// tests pin the iterative engines against reference implementations of
// the old recursive code — the conversion is only correct if it visits
// rights in exactly the recursive order, making the resulting matchings
// bit-identical — and exercise the deep-chain shapes the recursion could
// not survive.
//
//===----------------------------------------------------------------------===//

#include "order/Chains.h"
#include "order/Matching.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

using namespace ursa;

namespace {

/// The pre-conversion recursive Kuhn matcher, verbatim semantics: a
/// Visited byte array refilled per augment attempt and recursion into the
/// matched partner of each taken right. Small inputs only.
class RecursiveRefMatcher {
public:
  explicit RecursiveRefMatcher(unsigned NumVertices)
      : N(NumVertices), Adj(NumVertices) {
    Res.MatchOfLeft.assign(N, -1);
    Res.MatchOfRight.assign(N, -1);
  }

  void addBatchAndAugment(
      const std::vector<std::pair<unsigned, unsigned>> &Edges) {
    for (auto [L, R] : Edges)
      Adj[L].push_back(R);
    std::vector<uint8_t> Visited(N, 0);
    for (unsigned L = 0; L != N; ++L) {
      if (Res.MatchOfLeft[L] >= 0 || Adj[L].empty())
        continue;
      std::fill(Visited.begin(), Visited.end(), 0);
      if (tryAugment(L, Visited))
        ++Res.Size;
    }
  }

  const MatchingResult &result() const { return Res; }

private:
  bool tryAugment(unsigned Left, std::vector<uint8_t> &Visited) {
    for (unsigned Right : Adj[Left]) {
      if (Visited[Right])
        continue;
      Visited[Right] = 1;
      int Other = Res.MatchOfRight[Right];
      if (Other < 0 || tryAugment(unsigned(Other), Visited)) {
        Res.MatchOfLeft[Left] = int(Right);
        Res.MatchOfRight[Right] = int(Left);
        return true;
      }
    }
    return false;
  }

  unsigned N;
  std::vector<std::vector<unsigned>> Adj;
  MatchingResult Res;
};

/// The pre-conversion recursive Hopcroft-Karp (recursive layered DFS).
MatchingResult
recursiveRefHopcroftKarp(unsigned N,
                         const std::vector<std::vector<unsigned>> &Adj) {
  MatchingResult Res;
  Res.MatchOfLeft.assign(N, -1);
  Res.MatchOfRight.assign(N, -1);
  constexpr unsigned Inf = ~0u;
  std::vector<unsigned> Dist(N, Inf);

  auto Bfs = [&]() {
    std::deque<unsigned> Q;
    for (unsigned L = 0; L != N; ++L) {
      if (Res.MatchOfLeft[L] < 0) {
        Dist[L] = 0;
        Q.push_back(L);
      } else {
        Dist[L] = Inf;
      }
    }
    bool FoundFree = false;
    while (!Q.empty()) {
      unsigned L = Q.front();
      Q.pop_front();
      for (unsigned R : Adj[L]) {
        int L2 = Res.MatchOfRight[R];
        if (L2 < 0) {
          FoundFree = true;
        } else if (Dist[L2] == Inf) {
          Dist[L2] = Dist[L] + 1;
          Q.push_back(unsigned(L2));
        }
      }
    }
    return FoundFree;
  };

  auto Dfs = [&](auto &&Self, unsigned L) -> bool {
    for (unsigned R : Adj[L]) {
      int L2 = Res.MatchOfRight[R];
      if (L2 < 0 || (Dist[L2] == Dist[L] + 1 && Self(Self, unsigned(L2)))) {
        Res.MatchOfLeft[L] = int(R);
        Res.MatchOfRight[R] = int(L);
        return true;
      }
    }
    Dist[L] = Inf;
    return false;
  };

  while (Bfs())
    for (unsigned L = 0; L != N; ++L)
      if (Res.MatchOfLeft[L] < 0 && Dfs(Dfs, L))
        ++Res.Size;
  return Res;
}

/// Random strict order on N elements: random DAG + closure.
BitMatrix randomOrder(unsigned N, RNG &Rng, double EdgeProb) {
  BitMatrix Rel(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      if (Rng.chance(EdgeProb))
        Rel.set(I, J);
  for (unsigned I = N; I-- > 0;)
    Rel.row(I).forEach([&](unsigned J) { Rel.unionRows(I, J); });
  return Rel;
}

std::vector<unsigned> allOf(unsigned N) {
  std::vector<unsigned> V(N);
  for (unsigned I = 0; I != N; ++I)
    V[I] = I;
  return V;
}

/// Bipartite edges of a relation (the chain reduction's edge set), in
/// deterministic row-major order.
std::vector<std::pair<unsigned, unsigned>> relationEdges(const BitMatrix &Rel,
                                                         unsigned N) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned I = 0; I != N; ++I)
    Rel.row(I).forEach([&](unsigned J) { Edges.push_back({I, J}); });
  return Edges;
}

void expectSameMatching(const MatchingResult &Got, const MatchingResult &Ref) {
  EXPECT_EQ(Got.Size, Ref.Size);
  EXPECT_EQ(Got.MatchOfLeft, Ref.MatchOfLeft);
  EXPECT_EQ(Got.MatchOfRight, Ref.MatchOfRight);
}

/// Three relation families the matchers feed on in production: deep
/// chains (sequential reuse), wide antichains (parallel reuse), and
/// dense random orders.
BitMatrix shapedRelation(unsigned Shape, unsigned N, RNG &Rng) {
  switch (Shape) {
  case 0: { // deep chain: closure of a path
    BitMatrix Rel(N);
    for (unsigned I = 0; I != N; ++I)
      for (unsigned J = I + 1; J != N; ++J)
        Rel.set(I, J);
    return Rel;
  }
  case 1: // wide antichain: no relations at all
    return BitMatrix(N);
  default: // dense random order
    return randomOrder(N, Rng, 0.5);
  }
}

} // namespace

TEST(MatchingScale, IncrementalDifferentialVsRecursive) {
  // The iterative engine must reproduce the recursive engine's matching
  // bit for bit across random batch splits of random relations.
  RNG Rng(2024);
  for (unsigned Trial = 0; Trial != 120; ++Trial) {
    unsigned Shape = Trial % 3;
    unsigned N = 4 + Rng.below(40);
    BitMatrix Rel = shapedRelation(Shape, N, Rng);
    auto Edges = relationEdges(Rel, N);

    // Split the edge list into 1..4 prioritized batches.
    unsigned NumBatches = 1 + Rng.below(4);
    std::vector<std::vector<std::pair<unsigned, unsigned>>> Batches(NumBatches);
    for (const auto &E : Edges)
      Batches[Rng.below(NumBatches)].push_back(E);

    IncrementalMatcher It(N);
    RecursiveRefMatcher Ref(N);
    for (const auto &B : Batches) {
      It.addBatchAndAugment(B);
      Ref.addBatchAndAugment(B);
      expectSameMatching(It.result(), Ref.result());
    }
  }
}

TEST(MatchingScale, HopcroftKarpDifferentialVsRecursive) {
  RNG Rng(7);
  for (unsigned Trial = 0; Trial != 120; ++Trial) {
    unsigned Shape = Trial % 3;
    unsigned N = 4 + Rng.below(40);
    BitMatrix Rel = shapedRelation(Shape, N, Rng);
    std::vector<std::vector<unsigned>> Adj(N);
    for (auto [L, R] : relationEdges(Rel, N))
      Adj[L].push_back(R);
    expectSameMatching(hopcroftKarp(N, Adj), recursiveRefHopcroftKarp(N, Adj));
  }
}

TEST(MatchingScale, WidthsStillMatchBruteForce) {
  // End-to-end through the chain decomposition: both engines must still
  // produce Dilworth-minimal decompositions on every relation shape.
  RNG Rng(500);
  for (unsigned Trial = 0; Trial != 60; ++Trial) {
    unsigned Shape = Trial % 3;
    unsigned N = 3 + Rng.below(12);
    BitMatrix Rel = shapedRelation(Shape, N, Rng);
    std::vector<unsigned> Active = allOf(N);
    unsigned Want = bruteForceWidth(Rel, Active);
    EXPECT_EQ(decomposeChains(Rel, Active).width(), Want);
  }
}

TEST(MatchingScale, DeepChainAugmentDoesNotOverflow) {
  // Adversarial two-batch instance whose final augmenting path walks a
  // K-deep alternating chain: batch 1 matches L_i <-> R_i (each L_i also
  // knows R_{i+1}); batch 2 adds L_0 -> R_1, and the only augmentation
  // re-routes every existing pair. The recursive engine recursed K deep
  // here and overflowed the stack for K around 10^5.
  constexpr unsigned K = 100000;
  unsigned N = K + 1;
  std::vector<std::pair<unsigned, unsigned>> Batch1;
  for (unsigned I = 1; I != K; ++I) {
    Batch1.push_back({I, I});
    Batch1.push_back({I, I + 1});
  }
  IncrementalMatcher M(N);
  M.addBatchAndAugment(Batch1);
  ASSERT_EQ(M.result().Size, K - 1);

  M.addBatchAndAugment({{0u, 1u}});
  const MatchingResult &R = M.result();
  EXPECT_EQ(R.Size, K);
  EXPECT_EQ(R.MatchOfLeft[0], 1);
  for (unsigned I = 1; I != K; ++I)
    EXPECT_EQ(R.MatchOfLeft[I], int(I + 1)) << "left " << I;
}

TEST(MatchingScale, DeepChainHopcroftKarpDoesNotOverflow) {
  // Phase 1 greedily pairs L_i with R_{i+1} (listed first), stranding
  // L_{K-1}; phase 2's only augmenting path cascades through all K pairs
  // down to the free R_0 — a K-deep DFS in the old recursive form.
  constexpr unsigned K = 100000;
  std::vector<std::vector<unsigned>> Adj(K);
  for (unsigned I = 0; I + 1 != K; ++I)
    Adj[I] = {I + 1, I};
  Adj[K - 1] = {K - 1};
  MatchingResult R = hopcroftKarp(K, Adj);
  EXPECT_EQ(R.Size, K);
  for (unsigned I = 0; I != K; ++I)
    EXPECT_EQ(R.MatchOfLeft[I], int(I)) << "left " << I;
}

TEST(MatchingScale, DeepChainDecompositionWidthOne) {
  // A deep chain fed through the full decomposition: one chain, in
  // order. (Consecutive-only edges — the BitMatrix closure of a path
  // would cost O(N^2) bits — which still decomposes into one chain.)
  constexpr unsigned N = 20000;
  BitMatrix Rel(N);
  for (unsigned I = 0; I + 1 != N; ++I)
    Rel.set(I, I + 1);
  ChainDecomposition CD = decomposeChains(Rel, allOf(N));
  ASSERT_EQ(CD.width(), 1u);
  ASSERT_EQ(CD.Chains[0].size(), N);
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(CD.Chains[0][I], I);
}

TEST(MatchingScale, WideAntichainDecomposition) {
  // The opposite extreme: no relations, so every node is its own chain.
  constexpr unsigned N = 8192;
  BitMatrix Rel(N);
  ChainDecomposition CD = decomposeChains(Rel, allOf(N));
  EXPECT_EQ(CD.width(), N);
}
