//===- tests/driveropts_test.cpp - URSA driver option contracts -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ursa;

TEST(DriverOptions, DisabledSpillsMeansNoSpills) {
  MachineModel M = MachineModel::homogeneous(4, 4);
  URSAOptions UO;
  UO.EnableSpills = false;
  for (auto &[Name, T] : kernelSuite()) {
    URSAResult R = runURSA(buildDAG(T), M, UO);
    EXPECT_EQ(R.SpillsInserted, 0u) << Name;
    // No spill instructions in the transformed trace either.
    for (const Instruction &I : R.DAG.trace().instructions())
      EXPECT_FALSE(isSpillOp(I.opcode())) << Name;
  }
}

TEST(DriverOptions, DisabledRegSeqStillSpills) {
  MachineModel M = MachineModel::homogeneous(4, 4);
  URSAOptions UO;
  UO.EnableRegSeq = false;
  URSAResult R = runURSA(buildDAG(dotProductTrace(8)), M, UO);
  // dot8 needs register work on 4 registers; with sequencing off it can
  // only come from spills.
  EXPECT_GT(R.SpillsInserted, 0u);
}

TEST(DriverOptions, MaxRoundsZeroDoesNothing) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions UO;
  UO.MaxRounds = 0;
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, UO);
  EXPECT_EQ(R.Rounds, 0u);
  EXPECT_EQ(R.CritPathBefore, R.CritPathAfter);
  EXPECT_FALSE(R.WithinLimits);
}

TEST(DriverOptions, RoundLogAlwaysCollected) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  EXPECT_GT(R.Rounds, 0u);
  EXPECT_EQ(R.RoundLog.size(), R.Rounds);
}

TEST(DriverOptions, MaxRoundsTripIsRecorded) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions UO;
  UO.MaxRounds = 1; // figure2 needs several rounds on a 2x3 machine
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, UO);
  EXPECT_NE(std::find(R.StopReasons.begin(), R.StopReasons.end(),
                      "max_rounds"),
            R.StopReasons.end());
  bool Diagnosed = false;
  for (const Diag &Dg : R.Diags)
    Diagnosed |= Dg.Message.find("MaxRounds") != std::string::npos;
  EXPECT_TRUE(Diagnosed);
}

TEST(DriverOptions, TimeBudgetTripIsRecorded) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions UO;
  UO.TimeBudgetMs = 1;
  // A zero-length budget cannot be met; the driver must say so rather
  // than stop quietly. Spin until the first budget check fires.
  URSAResult R = runURSA(buildDAG(figure2Trace()), M, UO);
  if (R.BudgetExhausted)
    EXPECT_NE(std::find(R.StopReasons.begin(), R.StopReasons.end(),
                        "time_budget"),
              R.StopReasons.end());
}

TEST(DriverOptions, ExactKillSolverWorksEndToEnd) {
  MachineModel M = MachineModel::homogeneous(3, 5);
  URSAOptions UO;
  UO.Measure.KillSolver = 1;
  GenOptions Opts;
  Opts.NumInstrs = 22;
  for (uint64_t Seed = 1; Seed != 5; ++Seed) {
    Opts.Seed = Seed * 11;
    URSAResult R = runURSA(buildDAG(generateTrace(Opts)), M, UO);
    EXPECT_TRUE(R.WithinLimits) << "seed " << Seed;
  }
}

TEST(DriverOptions, PlainMatchingWorksEndToEnd) {
  MachineModel M = MachineModel::homogeneous(3, 5);
  URSAOptions UO;
  UO.Measure.PrioritizedMatching = false;
  for (auto &[Name, T] : kernelSuite()) {
    URSAResult R = runURSA(buildDAG(T), M, UO);
    // The plain decomposition is still minimum (Theorem 1): the final
    // requirement must agree with the prioritized run's certificate.
    URSAResult P = runURSA(buildDAG(T), M);
    EXPECT_EQ(R.WithinLimits, P.WithinLimits) << Name;
  }
}

TEST(DriverOptions, ResultCarriesTransformedTraceGrowth) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  Trace T = figure2Trace();
  unsigned Before = T.size();
  URSAResult R = runURSA(buildDAG(T), M);
  // Each inserted spill adds a store+reload pair (re-gates add none).
  EXPECT_GE(R.DAG.trace().size(), Before);
  EXPECT_LE(R.DAG.trace().size(), Before + 2 * R.SpillsInserted);
}
