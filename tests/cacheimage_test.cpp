//===- tests/cacheimage_test.cpp - Crash-safe cache persistence -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The ursa.cache_image.v1 format end to end: entry encode/decode
// round-trips, rejection of structural garbage, snapshot+journal
// persistence across CachePersister generations, journal-only recovery
// (the kill -9 story), tolerance of torn tails and CRC corruption, stale
// header rejection, and the CompileService warm-restart acceptance path —
// a restarted service loads its caches warm and answers bit-identically.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "service/CompileService.h"
#include "ursa/CacheImage.h"
#include "ursa/PipelineVerifier.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>
#include <vector>

using namespace ursa;

namespace {

std::string testDir(const char *Tag) {
  std::string D = "/tmp/ursa_cacheimage_" + std::string(Tag) + "_" +
                  std::to_string(::getpid());
  std::string Cmd = "rm -rf " + D;
  (void)std::system(Cmd.c_str());
  return D;
}

/// A deterministic generated DAG (ready for fingerprinting).
DependenceDAG genDAG(uint64_t Seed, unsigned NumInstrs = 20) {
  GenOptions G;
  G.NumInstrs = NumInstrs;
  G.Seed = Seed;
  std::string Src = generateTrace(G).str();
  Trace T("gen" + std::to_string(Seed));
  std::string Err;
  EXPECT_TRUE(parseTrace(Src, T, Err)) << Err;
  return buildDAG(std::move(T));
}

MachineModel testModel() {
  service::MachineSpec Spec;
  Spec.Fus = 2;
  Spec.Regs = 4;
  return Spec.build();
}

/// Raw bytes of a file (for corruption surgery).
std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

unsigned warningCount(const Status &St) {
  unsigned N = 0;
  for (const Diag &D : St.diags())
    if (D.Sev == Severity::Warning)
      ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry codec
//===----------------------------------------------------------------------===//

TEST(CacheImageCodec, Crc32KnownAnswer) {
  // The IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(CacheImageCodec, EntryRoundTripsBitIdentically) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    DependenceDAG D = genDAG(Seed);
    uint64_t Fp = dagFingerprint(D);

    std::string Payload = encodeCacheEntry(Fp, D);
    uint64_t FpOut = 0;
    StatusOr<std::unique_ptr<DependenceDAG>> Dec =
        decodeCacheEntry(Payload, FpOut);
    ASSERT_TRUE(Dec.isOk()) << Dec.status().str();

    EXPECT_EQ(FpOut, Fp);
    // The decoded DAG is structurally sound and fingerprints identically —
    // the exact property the loader's validation relies on.
    Status V = verifyDAGStructure(**Dec);
    EXPECT_TRUE(V.isOk()) << V.str();
    EXPECT_EQ(dagFingerprint(**Dec), Fp);
    EXPECT_EQ((*Dec)->trace().size(), D.trace().size());
    EXPECT_EQ((*Dec)->size(), D.size());
  }
}

TEST(CacheImageCodec, DecodeRejectsStructuralGarbage) {
  DependenceDAG D = genDAG(3);
  std::string Good = encodeCacheEntry(dagFingerprint(D), D);
  uint64_t Fp = 0;

  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t Len = 0; Len < Good.size(); Len += 7)
    EXPECT_FALSE(decodeCacheEntry(Good.substr(0, Len), Fp).isOk())
        << "prefix of " << Len << " bytes decoded";

  // Arbitrary bytes.
  EXPECT_FALSE(decodeCacheEntry("", Fp).isOk());
  EXPECT_FALSE(decodeCacheEntry("not an entry at all", Fp).isOk());
  EXPECT_FALSE(decodeCacheEntry(std::string(256, '\xff'), Fp).isOk());
}

//===----------------------------------------------------------------------===//
// Persister: snapshot + journal across generations
//===----------------------------------------------------------------------===//

TEST(CachePersisterTest, SnapshotRoundTripsAcrossGenerations) {
  std::string Dir = testDir("snap");
  MachineModel M = testModel();
  const unsigned N = 5;

  std::vector<uint64_t> Fps;
  {
    CachePersister P(Dir, "h2x8", MeasureOptions{});
    for (unsigned I = 0; I != N; ++I) {
      DependenceDAG D = genDAG(I + 1);
      Fps.push_back(dagFingerprint(D));
      P.append(Fps.back(), D);
    }
    EXPECT_EQ(P.entries(), N);
    EXPECT_EQ(P.dirtyEntries(), N);
    ASSERT_TRUE(P.snapshot().isOk());
    EXPECT_EQ(P.dirtyEntries(), 0u);
  }

  CachePersister P2(Dir, "h2x8", MeasureOptions{});
  MeasurementCache Cache(true, 1024);
  Status St = P2.load(Cache, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(warningCount(St), 0u) << St.str();
  EXPECT_EQ(P2.loadedEntries(), N);
  EXPECT_EQ(Cache.size(), N);

  // The rebuilt states are served under the original fingerprints: a get()
  // for one of the persisted DAGs is a hit, not a rebuild.
  DependenceDAG D = genDAG(1);
  unsigned Rebuilds = 0;
  Cache.setBuildObserver([&](uint64_t, const DependenceDAG &) { ++Rebuilds; });
  (void)Cache.get(D, M, MeasureOptions{});
  EXPECT_EQ(Rebuilds, 0u) << "persisted entry missed on reload";
}

TEST(CachePersisterTest, SnapshotRenameThenReopenServesTheNewImage) {
  // The durability regression this pins: snapshot() publishes the new
  // image by renaming the temp file over the live name, but without an
  // fsync of the parent directory the *name* itself could be lost on
  // power failure even though the bytes were fsynced. Observable contract:
  // after snapshot() returns, the image exists under its final name (no
  // temp file lingers), and a fresh persister opened immediately serves
  // every entry from it — across repeated rename generations.
  std::string Dir = testDir("rename");
  MachineModel M = testModel();

  std::string SnapPath;
  std::vector<uint64_t> Fps;
  for (unsigned Gen = 1; Gen <= 3; ++Gen) {
    {
      CachePersister P(Dir, "h2x8", MeasureOptions{});
      MeasurementCache Warm(true, 1024);
      ASSERT_TRUE(P.load(Warm, M).isOk());
      DependenceDAG D = genDAG(Gen * 11);
      Fps.push_back(dagFingerprint(D));
      P.append(Fps.back(), D);
      ASSERT_TRUE(P.snapshot().isOk()) << "generation " << Gen;
      SnapPath = P.snapshotPath();
    }
    // The renamed image is in place under its final name...
    EXPECT_EQ(::access(SnapPath.c_str(), F_OK), 0) << "generation " << Gen;
    EXPECT_NE(::access((SnapPath + ".tmp").c_str(), F_OK), 0)
        << "temp file survived the rename, generation " << Gen;
    // ...and a reopened persister serves every generation's entries.
    CachePersister P2(Dir, "h2x8", MeasureOptions{});
    MeasurementCache Cache(true, 1024);
    Status St = P2.load(Cache, M);
    ASSERT_TRUE(St.isOk()) << St.str();
    EXPECT_EQ(warningCount(St), 0u) << St.str();
    EXPECT_EQ(Cache.size(), Gen);
    for (unsigned I = 0; I != Fps.size(); ++I) {
      DependenceDAG D = genDAG((I + 1) * 11);
      unsigned Rebuilds = 0;
      Cache.setBuildObserver(
          [&](uint64_t, const DependenceDAG &) { ++Rebuilds; });
      (void)Cache.get(D, M, MeasureOptions{});
      EXPECT_EQ(Rebuilds, 0u)
          << "generation " << Gen << " lost entry " << I << " on reopen";
    }
  }
}

TEST(CachePersisterTest, JournalAloneRecoversAfterSimulatedKill) {
  // No snapshot() ever runs: only the flushed journal survives, exactly
  // the kill -9 situation. Everything appended must still come back.
  std::string Dir = testDir("kill9");
  MachineModel M = testModel();
  const unsigned N = 4;
  {
    CachePersister P(Dir, "h2x8", MeasureOptions{});
    for (unsigned I = 0; I != N; ++I) {
      DependenceDAG D = genDAG(I + 1);
      P.append(dagFingerprint(D), D);
    }
    // Destructor: no snapshot, journal already flushed per append.
  }

  CachePersister P2(Dir, "h2x8", MeasureOptions{});
  MeasurementCache Cache(true, 1024);
  Status St = P2.load(Cache, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P2.loadedEntries(), N);
  EXPECT_EQ(Cache.size(), N);
}

TEST(CachePersisterTest, TornJournalTailIsSkippedCleanly) {
  std::string Dir = testDir("torn");
  MachineModel M = testModel();
  std::string JourPath;
  {
    CachePersister P(Dir, "h2x8", MeasureOptions{});
    for (unsigned I = 0; I != 3; ++I) {
      DependenceDAG D = genDAG(I + 1);
      P.append(dagFingerprint(D), D);
    }
    JourPath = P.journalPath();
  }

  // A crash mid-append: a record whose length promises more bytes than
  // the file holds. The three complete records must still load.
  {
    std::ofstream Out(JourPath, std::ios::binary | std::ios::app);
    const char Torn[] = {0x00, 0x00, 0x40, 0x00, 'h', 'a', 'l', 'f'};
    Out.write(Torn, sizeof(Torn));
  }

  CachePersister P2(Dir, "h2x8", MeasureOptions{});
  MeasurementCache Cache(true, 1024);
  Status St = P2.load(Cache, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P2.loadedEntries(), 3u);
  EXPECT_GE(warningCount(St), 1u) << "torn tail should warn";
}

TEST(CachePersisterTest, CrcCorruptionStopsTheScanWithoutCrashing) {
  std::string Dir = testDir("crc");
  MachineModel M = testModel();
  std::string SnapPath;
  {
    CachePersister P(Dir, "h2x8", MeasureOptions{});
    for (unsigned I = 0; I != 4; ++I) {
      DependenceDAG D = genDAG(I + 1);
      P.append(dagFingerprint(D), D);
    }
    ASSERT_TRUE(P.snapshot().isOk());
    SnapPath = P.snapshotPath();
  }

  // Flip one byte near the end of the snapshot (inside the last record's
  // payload): its CRC check fails, earlier records still load, nothing
  // crashes, and the loader says so.
  std::string Bytes = slurp(SnapPath);
  ASSERT_GT(Bytes.size(), 16u);
  Bytes[Bytes.size() - 8] ^= 0x5a;
  spit(SnapPath, Bytes);

  CachePersister P2(Dir, "h2x8", MeasureOptions{});
  MeasurementCache Cache(true, 1024);
  Status St = P2.load(Cache, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_GE(P2.loadedEntries(), 1u) << "records before the corruption lost";
  EXPECT_LT(P2.loadedEntries(), 4u) << "corrupt record loaded anyway";
  EXPECT_GE(warningCount(St), 1u);

  // Garbage that is not even an image: rejected as a whole, still no crash.
  spit(SnapPath, "this is not a cache image");
  CachePersister P3(Dir, "h2x8", MeasureOptions{});
  MeasurementCache Cache3(true, 1024);
  St = P3.load(Cache3, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P3.loadedEntries(), 0u);
  EXPECT_GE(warningCount(St), 1u);
}

TEST(CachePersisterTest, StaleHeaderRejectsTheWholeFile) {
  // Same sanitized file name, different image header: "a/b" and "a:b"
  // both sanitize to a_b, so the second persister finds a file whose
  // header names a different machine key — and must reject it wholesale
  // rather than warm the wrong machine.
  std::string Dir = testDir("stale");
  MachineModel M = testModel();
  {
    CachePersister P(Dir, "a/b", MeasureOptions{});
    DependenceDAG D = genDAG(1);
    P.append(dagFingerprint(D), D);
    ASSERT_TRUE(P.snapshot().isOk());
  }

  CachePersister P2(Dir, "a:b", MeasureOptions{});
  EXPECT_EQ(P2.snapshotPath(),
            CachePersister(Dir, "a/b", MeasureOptions{}).snapshotPath())
      << "test premise broken: keys no longer collide";
  MeasurementCache Cache(true, 1024);
  Status St = P2.load(Cache, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P2.loadedEntries(), 0u) << "stale image warmed a wrong machine";
  EXPECT_GE(warningCount(St), 1u);

  // Divergent measure options same story: the header no longer matches.
  {
    CachePersister P3(Dir, "mo", MeasureOptions{});
    DependenceDAG D = genDAG(2);
    P3.append(dagFingerprint(D), D);
    ASSERT_TRUE(P3.snapshot().isOk());
  }
  MeasureOptions Other;
  Other.PrioritizedMatching = !Other.PrioritizedMatching;
  CachePersister P4(Dir, "mo", Other);
  MeasurementCache Cache4(true, 1024);
  St = P4.load(Cache4, M);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(P4.loadedEntries(), 0u);
}

//===----------------------------------------------------------------------===//
// Service warm restart
//===----------------------------------------------------------------------===//

namespace {

/// Minimal response collector (mirrors service_test.cpp).
struct Collector {
  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<service::ServiceResponse> Got;

  service::CompileService::ResponseFn sink() {
    return [this](const service::ServiceResponse &R) {
      std::lock_guard<std::mutex> L(Mu);
      Got.push_back(R);
      Cv.notify_all();
    };
  }
  std::vector<service::ServiceResponse> waitFor(size_t N) {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait_for(L, std::chrono::seconds(60), [&] { return Got.size() >= N; });
    return Got;
  }
};

std::vector<std::string> compileAll(service::CompileService &Svc,
                                    const std::vector<std::string> &Sources) {
  Collector Col;
  for (size_t I = 0; I != Sources.size(); ++I) {
    service::ServiceRequest R;
    R.Op = service::ServiceRequest::OpKind::Compile;
    R.Id = std::to_string(I);
    R.Source = Sources[I];
    R.Machine.Fus = 2;
    R.Machine.Regs = 4;
    Svc.handle(std::move(R), Col.sink());
  }
  auto Got = Col.waitFor(Sources.size());
  EXPECT_EQ(Got.size(), Sources.size());
  std::vector<std::string> Texts(Sources.size());
  for (const service::ServiceResponse &R : Got) {
    EXPECT_EQ(R.Status, service::ServiceResponse::StatusKind::Ok) << R.Error;
    Texts[size_t(std::atol(R.Id.c_str()))] = R.Text;
  }
  return Texts;
}

} // namespace

TEST(ServicePersistence, WarmRestartAnswersBitIdentically) {
  std::string Dir = testDir("service");
  std::vector<std::string> Sources;
  for (unsigned I = 0; I != 6; ++I) {
    GenOptions G;
    G.NumInstrs = 24;
    G.Seed = 100 + I;
    Sources.push_back(generateTrace(G).str());
  }

  service::ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.CacheDir = Dir;
  Cfg.SnapshotEvery = 2; // exercise periodic snapshots too

  std::vector<std::string> Cold;
  {
    service::CompileService Svc(Cfg);
    Cold = compileAll(Svc, Sources);
    Svc.stop(/*Drain=*/true); // drain-time snapshot
  }

  {
    service::CompileService Svc(Cfg);
    std::vector<std::string> Warm = compileAll(Svc, Sources);
    for (size_t I = 0; I != Sources.size(); ++I)
      EXPECT_EQ(Warm[I], Cold[I]) << "warm restart diverged on " << I;
    // The restart actually warmed: the report says entries loaded.
    std::string Report = Svc.reportJSON();
    EXPECT_NE(Report.find("\"loaded_warm\""), std::string::npos);
    EXPECT_EQ(Report.find("\"loaded_warm\": 0,"), std::string::npos)
        << "no entries loaded warm:\n"
        << Report;
    Svc.stop(true);
  }
}

TEST(ServicePersistence, JournalOnlyRestartAfterSimulatedKill) {
  // SnapshotOnStop off and SnapshotEvery 0: nothing but the per-append
  // journal ever hits disk — the closest in-process stand-in for kill -9.
  std::string Dir = testDir("servicekill");
  std::vector<std::string> Sources;
  for (unsigned I = 0; I != 4; ++I) {
    GenOptions G;
    G.NumInstrs = 24;
    G.Seed = 200 + I;
    Sources.push_back(generateTrace(G).str());
  }

  service::ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.CacheDir = Dir;
  Cfg.SnapshotEvery = 0;
  Cfg.SnapshotOnStop = false;

  std::vector<std::string> Cold;
  {
    service::CompileService Svc(Cfg);
    Cold = compileAll(Svc, Sources);
    Svc.stop(true);
  }

  service::CompileService Svc(Cfg);
  std::vector<std::string> Warm = compileAll(Svc, Sources);
  for (size_t I = 0; I != Sources.size(); ++I)
    EXPECT_EQ(Warm[I], Cold[I]);
  service::ServiceCounters C = Svc.counters();
  EXPECT_EQ(C.Completed, Sources.size());
  std::string Report = Svc.reportJSON();
  EXPECT_NE(Report.find("\"loaded_warm\""), std::string::npos);
  EXPECT_EQ(Report.find("\"loaded_warm\": 0,"), std::string::npos)
      << "journal-only restart loaded nothing:\n"
      << Report;
  Svc.stop(true);
}
