//===- tests/swp_test.cpp - Software-pipelining search --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGParser.h"
#include "cfg/SoftwarePipeline.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

const char *LoopSource = R"(
func squares {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  z0 = ldi 0
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.95 : exit
block exit:
  ret
}
)";

MemoryState inputs(int64_t N) {
  MemoryState In;
  In["i"] = Value::ofInt(N);
  return In;
}

} // namespace

TEST(SoftwarePipeline, FindsAValidatedFactor) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  MachineModel M = MachineModel::homogeneous(4, 12);
  PipelineSearchResult R = searchUnrollFactor(F, M, inputs(32), 8);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Tried.size(), 2u);
  // The winner really is the argmin of the candidates tried.
  for (auto [Factor, Cycles] : R.Tried)
    EXPECT_LE(R.BestCycles, Cycles) << "factor " << Factor;
  // And it beats (or ties) the no-unroll baseline.
  unsigned BaseCycles = 0;
  for (auto [Factor, Cycles] : R.Tried)
    if (Factor == 1)
      BaseCycles = Cycles;
  ASSERT_GT(BaseCycles, 0u);
  EXPECT_LE(R.BestCycles, BaseCycles);
}

TEST(SoftwarePipeline, WinnerExecutesCorrectlyOnOtherInputs) {
  CFGFunction F = parseCFGOrDie(LoopSource);
  MachineModel M = MachineModel::homogeneous(4, 12);
  PipelineSearchResult R = searchUnrollFactor(F, M, inputs(32), 8);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Calibrated on 32 iterations; must stay correct on trip counts that
  // are not multiples of the chosen factor.
  for (int64_t N : {0, 1, 3, 7, 50}) {
    CFGExecResult Want = interpretCFG(F, inputs(N));
    CFGExecResult Got = runCompiledCFG(R.Unrolled, R.Compiled, inputs(N));
    ASSERT_TRUE(Want.Ok && Got.Ok) << Got.Error;
    EXPECT_EQ(Got.Memory, Want.Memory) << "n=" << N;
  }
}

TEST(SoftwarePipeline, NarrowMachinePrefersLowFactors) {
  // On a 1-wide machine there is no ILP to expose; unrolling only saves
  // branch/negation overhead, so the search must still terminate and
  // validate.
  CFGFunction F = parseCFGOrDie(LoopSource);
  MachineModel M = MachineModel::homogeneous(1, 6);
  PipelineSearchResult R = searchUnrollFactor(F, M, inputs(16), 4);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (int64_t N : {2, 9}) {
    CFGExecResult Want = interpretCFG(F, inputs(N));
    CFGExecResult Got = runCompiledCFG(R.Unrolled, R.Compiled, inputs(N));
    ASSERT_TRUE(Got.Ok);
    EXPECT_EQ(Got.Memory, Want.Memory);
  }
}

TEST(SoftwarePipeline, RejectsNonTerminatingCalibration) {
  CFGFunction F =
      parseCFGOrDie("func spin {\nblock a:\n  jmp a\n}\n");
  MachineModel M = MachineModel::homogeneous(2, 4);
  PipelineSearchResult R = searchUnrollFactor(F, M, {}, 4);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("terminate"), std::string::npos);
}
