//===- tests/vliw_test.cpp - VLIW program and simulator -------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "vliw/Simulator.h"
#include "vliw/VLIWProgram.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// Builds an op with physical registers.
VLIWOp op(Opcode O, int Dest, int A = -1, int B = -1) {
  Instruction I(O);
  I.setDomain(opcodeInfo(O).Dom);
  if (definesValue(O))
    I.setDest(Dest);
  if (numSrcs(O) >= 1)
    I.setOperand(0, A);
  if (numSrcs(O) >= 2)
    I.setOperand(1, B);
  return {I, 0};
}

VLIWOp ldi(int Dest, int64_t Imm) {
  VLIWOp V = op(Opcode::LoadImm, Dest);
  V.I.setIntImm(Imm);
  return V;
}

VLIWOp loadVar(int Dest, int Sym) {
  VLIWOp V = op(Opcode::Load, Dest);
  V.I.setSymbol(Sym);
  return V;
}

VLIWOp storeVar(int Sym, int Src) {
  Instruction I(Opcode::Store);
  I.setSymbol(Sym);
  I.setOperand(0, Src);
  return {I, 0};
}

} // namespace

TEST(VLIWProgram, ValidateCatchesOverSubscription) {
  MachineModel M = MachineModel::homogeneous(2, 8);
  VLIWProgram P(M, {}, 0);
  VLIWWord &W = P.newWord();
  W.Ops.push_back(ldi(0, 1));
  W.Ops.push_back(ldi(1, 2));
  EXPECT_TRUE(P.validate().empty());
  W.Ops.push_back(ldi(2, 3));
  EXPECT_FALSE(P.validate().empty());
}

TEST(VLIWProgram, ValidateCatchesBadRegister) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  VLIWProgram P(M, {}, 0);
  P.newWord().Ops.push_back(ldi(7, 1)); // register 7 of 4
  EXPECT_FALSE(P.validate().empty());
}

TEST(VLIWProgram, UtilizationCountsSlots) {
  MachineModel M = MachineModel::homogeneous(2, 8);
  VLIWProgram P(M, {}, 0);
  P.newWord().Ops.push_back(ldi(0, 1));
  P.newWord(); // empty word
  EXPECT_DOUBLE_EQ(P.utilization(), 0.25);
  EXPECT_EQ(P.numOps(), 1u);
}

TEST(Simulator, ExecutesArithmetic) {
  MachineModel M = MachineModel::homogeneous(2, 8);
  VLIWProgram P(M, {"out"}, 0);
  P.newWord().Ops.push_back(ldi(0, 6));
  P.newWord().Ops.push_back(ldi(1, 7));
  P.newWord().Ops.push_back(op(Opcode::Mul, 2, 0, 1));
  P.newWord().Ops.push_back(storeVar(0, 2));
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["out"].I, 42);
}

TEST(Simulator, WordReadsHappenBeforeWrites) {
  // r0 = 1; then in one word: r0 = 2 || store old r0.
  MachineModel M = MachineModel::homogeneous(2, 8);
  VLIWProgram P(M, {"out"}, 0);
  P.newWord().Ops.push_back(ldi(0, 1));
  VLIWWord &W = P.newWord();
  W.Ops.push_back(ldi(0, 2));
  W.Ops.push_back(storeVar(0, 0));
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["out"].I, 1) << "store must read the old value";
}

TEST(Simulator, DetectsReadBeforeLatencyCommit) {
  MachineModel M = MachineModel::homogeneous(2, 8).withLatencies(3, 3, 3);
  VLIWProgram P(M, {"out"}, 0);
  P.newWord().Ops.push_back(ldi(0, 5));
  P.newWord().Ops.push_back(op(Opcode::Neg, 1, 0)); // too early: 1 < 3
  SimResult R = simulate(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("before its write commits"), std::string::npos);
}

TEST(Simulator, LatencyRespectedExecutes) {
  MachineModel M = MachineModel::homogeneous(2, 8).withLatencies(3, 3, 3);
  VLIWProgram P(M, {"out"}, 0);
  P.newWord().Ops.push_back(ldi(0, 5));
  P.newWord();
  P.newWord();
  P.newWord().Ops.push_back(op(Opcode::Neg, 1, 0));
  for (int I = 0; I != 3; ++I)
    P.newWord();
  P.newWord().Ops.push_back(storeVar(0, 1));
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["out"].I, -5);
}

TEST(Simulator, DetectsDoubleWrite) {
  MachineModel M = MachineModel::homogeneous(2, 8);
  VLIWProgram P(M, {}, 0);
  VLIWWord &W = P.newWord();
  W.Ops.push_back(ldi(0, 1));
  W.Ops.push_back(ldi(0, 2));
  SimResult R = simulate(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("two writes"), std::string::npos);
}

TEST(Simulator, DetectsConflictingStores) {
  MachineModel M = MachineModel::homogeneous(3, 8);
  VLIWProgram P(M, {"v"}, 0);
  P.newWord().Ops.push_back(ldi(0, 1));
  VLIWWord &W = P.newWord();
  W.Ops.push_back(storeVar(0, 0));
  W.Ops.push_back(storeVar(0, 0));
  SimResult R = simulate(P);
  EXPECT_FALSE(R.Ok);
}

TEST(Simulator, SpillRoundTrip) {
  MachineModel M = MachineModel::homogeneous(2, 2);
  VLIWProgram P(M, {"out"}, 1);
  P.newWord().Ops.push_back(ldi(0, 99));
  {
    Instruction St(Opcode::SpillStore);
    St.setOperand(0, 0);
    St.setSpillSlot(0);
    P.newWord().Ops.push_back({St, 0});
  }
  P.newWord().Ops.push_back(ldi(0, 1)); // clobber the register
  {
    Instruction Ld(Opcode::SpillLoad);
    Ld.setDest(1);
    Ld.setSpillSlot(0);
    P.newWord().Ops.push_back({Ld, 0});
  }
  P.newWord().Ops.push_back(storeVar(0, 1));
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["out"].I, 99);
}

TEST(Simulator, BranchLogInSourceOrder) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  VLIWProgram P(M, {}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 1));
  W0.Ops.push_back(ldi(1, 0));
  // Branch ordinal 1 issues before ordinal 0 — log must still be source
  // ordered.
  {
    Instruction B(Opcode::Br);
    B.setOperand(0, 0);
    B.setIntImm(1);
    P.newWord().Ops.push_back({B, 0});
  }
  {
    Instruction B(Opcode::Br);
    B.setOperand(0, 1);
    B.setIntImm(0);
    P.newWord().Ops.push_back({B, 0});
  }
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Exec.BranchLog.size(), 2u);
  EXPECT_EQ(R.Exec.BranchLog[0], 0);
  EXPECT_EQ(R.Exec.BranchLog[1], 1);
}

TEST(Simulator, TrailingWriteCommits) {
  MachineModel M = MachineModel::homogeneous(2, 8).withLatencies(4, 4, 4);
  VLIWProgram P(M, {}, 0);
  P.newWord().Ops.push_back(ldi(0, 5));
  // Program ends before the write's latency elapses; the value must still
  // land (no store to observe it here, but the run must succeed).
  SimResult R = simulate(P);
  EXPECT_TRUE(R.Ok) << R.Error;
}
