//===- tests/incremental_test.cpp - Incremental re-measurement ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The incremental measurement engine (delta reachability closures, warm-
// started chain matchings, the driver's delta scoring path) is only
// acceptable if it is invisible: every number it produces must be
// bit-identical to a full rebuild, on every workload, in every driver
// configuration. These tests check each layer differentially against the
// from-scratch implementation, then the whole driver across incremental /
// thread / cache modes, including under fault injection.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "order/Chains.h"
#include "order/Matching.h"
#include "ursa/Driver.h"
#include "ursa/FaultInjector.h"
#include "support/RNG.h"
#include "ursa/IncrementalMeasure.h"
#include "ursa/MeasureCache.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace ursa;

namespace {

DependenceDAG genDAG(unsigned NumInstrs, unsigned Window, uint64_t Seed) {
  GenOptions G;
  G.NumInstrs = NumInstrs;
  G.Window = Window;
  G.Seed = Seed;
  return buildDAG(generateTrace(G));
}

/// Real-node pairs (u, v) that are independent in \p A — exactly the
/// edges a sequencing transform may add without creating a cycle.
std::vector<std::pair<unsigned, unsigned>>
independentPairs(const DependenceDAG &D, const DAGAnalysis &A) {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned U = 2; U != D.size(); ++U)
    for (unsigned V = 2; V != D.size(); ++V)
      if (A.independent(U, V))
        Pairs.emplace_back(U, V);
  return Pairs;
}

void expectSameAnalysis(const DAGAnalysis &Got, const DAGAnalysis &Want,
                        unsigned N, const char *What) {
  EXPECT_EQ(Got.topoOrder(), Want.topoOrder()) << What;
  EXPECT_EQ(Got.criticalPathLength(), Want.criticalPathLength()) << What;
  for (unsigned U = 0; U != N; ++U) {
    ASSERT_TRUE(Got.descendants(U) == Want.descendants(U))
        << What << ": descendants of " << U;
    ASSERT_TRUE(Got.ancestors(U) == Want.ancestors(U))
        << What << ": ancestors of " << U;
    EXPECT_EQ(Got.depth(U), Want.depth(U)) << What;
    EXPECT_EQ(Got.height(U), Want.height(U)) << What;
  }
}

void expectSameRound(const RoundRecord &A, const RoundRecord &B,
                     const std::string &What) {
  EXPECT_EQ(A.Round, B.Round) << What;
  EXPECT_EQ(A.Kind, B.Kind) << What;
  EXPECT_EQ(A.Resource, B.Resource) << What;
  EXPECT_EQ(A.Detail, B.Detail) << What;
  EXPECT_EQ(A.ExcessBefore, B.ExcessBefore) << What;
  EXPECT_EQ(A.ExcessAfter, B.ExcessAfter) << What;
  EXPECT_EQ(A.CritPath, B.CritPath) << What;
  EXPECT_EQ(A.EdgesAdded, B.EdgesAdded) << What;
  EXPECT_EQ(A.SpillsInserted, B.SpillsInserted) << What;
  EXPECT_EQ(A.ProposalsTried, B.ProposalsTried) << What;
}

void expectSameResult(const URSAResult &A, const URSAResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.FinalRequired, B.FinalRequired) << What;
  EXPECT_EQ(A.WithinLimits, B.WithinLimits) << What;
  EXPECT_EQ(A.Rounds, B.Rounds) << What;
  EXPECT_EQ(A.SeqEdgesAdded, B.SeqEdgesAdded) << What;
  EXPECT_EQ(A.SpillsInserted, B.SpillsInserted) << What;
  ASSERT_EQ(A.RoundLog.size(), B.RoundLog.size()) << What;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I)
    expectSameRound(A.RoundLog[I], B.RoundLog[I], What);
}

uint64_t statValue(const char *Name) {
  for (const obs::StatValue &S : obs::snapshotStats())
    if (S.Name == Name)
      return S.Value;
  return 0;
}

/// RAII save/restore of one environment variable around a test.
struct ScopedEnv {
  std::string Name, Saved;
  bool Had;
  explicit ScopedEnv(const char *N) : Name(N) {
    const char *Old = std::getenv(N);
    Had = Old != nullptr;
    Saved = Old ? Old : "";
  }
  ~ScopedEnv() {
    if (Had)
      setenv(Name.c_str(), Saved.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Layer 1: delta reachability closures
//===----------------------------------------------------------------------===//

TEST(IncrementalAnalysis, DeltaClosureMatchesFreshBuild) {
  for (uint64_t Seed = 1; Seed != 8; ++Seed) {
    DependenceDAG D = genDAG(30, 10, Seed);
    DAGAnalysis Base(D);
    RNG Rng(Seed * 77 + 1);

    // Fold several random safe edges, one and two at a time — multi-edge
    // proposals must compose sequentially.
    for (unsigned Step = 0; Step != 6; ++Step) {
      auto Pairs = independentPairs(D, Base);
      if (Pairs.empty())
        break;
      std::vector<std::pair<unsigned, unsigned>> Added;
      Added.push_back(Pairs[Rng.below(Pairs.size())]);
      if (Step % 2 == 1 && Pairs.size() > 1)
        Added.push_back(Pairs[Rng.below(Pairs.size())]);

      DependenceDAG Mut = D;
      bool AllSafe = true;
      for (auto [U, V] : Added) {
        // The second edge is drawn against the pre-delta analysis, so it
        // may close a cycle with the first; skip such draws — cycle
        // rejection has its own test.
        DAGAnalysis Cur(Mut);
        if (!Cur.edgeKeepsAcyclic(U, V)) {
          AllSafe = false;
          break;
        }
        Mut.addEdge(U, V, EdgeKind::Sequence);
      }
      if (!AllSafe)
        continue;

      auto Inc = DAGAnalysis::buildIncremental(Mut, Base, Added);
      ASSERT_NE(Inc, nullptr);
      DAGAnalysis Fresh(Mut);
      expectSameAnalysis(*Inc, Fresh, Mut.size(), "delta closure");

      // Continue from the mutated DAG so later steps start deeper.
      D = std::move(Mut);
      Base = DAGAnalysis(D);
    }
  }
}

TEST(IncrementalAnalysis, AlreadyPresentEdgeIsANoOp) {
  DependenceDAG D = genDAG(20, 8, 3);
  DAGAnalysis Base(D);
  // Any real edge's endpoints are already in the closure.
  for (unsigned U = 2; U != D.size(); ++U) {
    unsigned V = Base.descendants(U).findNext(2);
    if (V >= D.size())
      continue;
    auto Inc = DAGAnalysis::buildIncremental(D, Base, {{U, V}});
    ASSERT_NE(Inc, nullptr);
    expectSameAnalysis(*Inc, Base, D.size(), "no-op delta");
    break;
  }
}

TEST(IncrementalAnalysis, RejectsUnsafeDeltas) {
  DependenceDAG D = genDAG(20, 8, 4);
  DAGAnalysis Base(D);

  // A cycle-closing edge: v -> u where u already reaches v.
  bool Checked = false;
  for (unsigned U = 2; U != D.size() && !Checked; ++U) {
    unsigned V = Base.descendants(U).findNext(2);
    if (V >= D.size())
      continue;
    EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{V, U}}), nullptr);
    Checked = true;
  }
  EXPECT_TRUE(Checked);

  // Self loops and out-of-range endpoints.
  EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{2, 2}}), nullptr);
  EXPECT_EQ(DAGAnalysis::buildIncremental(D, Base, {{2, D.size()}}), nullptr);

  // Size mismatch: the base analysis belongs to another DAG.
  DependenceDAG Other = genDAG(25, 8, 5);
  ASSERT_NE(Other.size(), D.size());
  EXPECT_EQ(DAGAnalysis::buildIncremental(Other, Base, {}), nullptr);
}

//===----------------------------------------------------------------------===//
// Layer 2: warm-started matchings
//===----------------------------------------------------------------------===//

TEST(WarmStart, WidthMatchesColdDecomposition) {
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    DependenceDAG D = genDAG(35, 12, Seed);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    RNG Rng(Seed);

    for (ResourceId::KindT Kind : {ResourceId::FU, ResourceId::Reg}) {
      ResourceId Res{Kind, FUKind::Universal, RegClassKind::GPR, true};
      Measurement Base = measureResource(D, A, HF, Res);

      // Perturb the DAG by one safe edge and re-derive the relation.
      auto Pairs = independentPairs(D, A);
      if (Pairs.empty())
        continue;
      auto [U, V] = Pairs[Rng.below(Pairs.size())];
      DependenceDAG Mut = D;
      Mut.addEdge(U, V, EdgeKind::Sequence);
      DAGAnalysis MutA(Mut);
      HammockForest MutHF(Mut, MutA);
      Measurement Fresh = measureResource(Mut, MutA, MutHF, Res);

      // Warm-starting from the *stale* chains must still land on the
      // canonical width (every maximum matching has the same size).
      EXPECT_EQ(chainWidthWarmStart(Fresh.Reuse.Rel, Fresh.Reuse.Active,
                                    Base.Chains),
                Fresh.MaxRequired)
          << "seed " << Seed;

      // The FU relation is the closure restricted to the active set, so
      // the raw closure must give the same width (rows may carry inactive
      // bits; the matcher masks them).
      if (Kind == ResourceId::FU)
        EXPECT_EQ(chainWidthWarmStart(MutA.reachabilityClosure(),
                                      Fresh.Reuse.Active, Base.Chains),
                  Fresh.MaxRequired)
            << "seed " << Seed;

      // Degenerate warm starts: an empty decomposition (cold start) and
      // the fresh decomposition itself (every pair survives).
      EXPECT_EQ(chainWidthWarmStart(Fresh.Reuse.Rel, Fresh.Reuse.Active,
                                    ChainDecomposition{}),
                Fresh.MaxRequired);
      EXPECT_EQ(chainWidthWarmStart(Fresh.Reuse.Rel, Fresh.Reuse.Active,
                                    Fresh.Chains),
                Fresh.MaxRequired);
    }
  }
}

TEST(WarmStart, SurvivingPairsAreAValidMatching) {
  DependenceDAG D = genDAG(30, 10, 6);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(D, A, HF, Res);

  auto Pairs = survivingMatchedPairs(M.Chains, M.Reuse.Rel);
  // Against its own relation every consecutive chain pair survives, and
  // the pair count is exactly |Active| - width (Fulkerson).
  EXPECT_EQ(Pairs.size(), M.Reuse.Active.size() - M.Chains.width());
  std::vector<uint8_t> SeenL(D.size(), 0), SeenR(D.size(), 0);
  for (auto [L, R] : Pairs) {
    EXPECT_TRUE(M.Reuse.Rel.test(L, R));
    EXPECT_FALSE(SeenL[L]) << "left " << L << " matched twice";
    EXPECT_FALSE(SeenR[R]) << "right " << R << " matched twice";
    SeenL[L] = SeenR[R] = 1;
  }
}

TEST(WarmStart, SeedMatchingFeedsTheIncrementalMatcher) {
  // The IncrementalMatcher warm-start API: seeding the surviving pairs
  // then augmenting with the full relation reaches the canonical size.
  DependenceDAG D = genDAG(30, 10, 2);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(D, A, HF, Res);

  std::vector<std::pair<unsigned, unsigned>> AllPairs;
  for (unsigned L : M.Reuse.Active)
    M.Reuse.Rel.row(L).forEach(
        [&](unsigned R) { AllPairs.emplace_back(L, R); });

  IncrementalMatcher Cold(D.size());
  Cold.addBatchAndAugment(AllPairs);

  IncrementalMatcher Warm(D.size());
  Warm.seedMatching(survivingMatchedPairs(M.Chains, M.Reuse.Rel));
  Warm.addBatchAndAugment(AllPairs);

  EXPECT_EQ(Warm.result().Size, Cold.result().Size);
  EXPECT_EQ(Cold.result().Size, M.Reuse.Active.size() - M.MaxRequired);
}

//===----------------------------------------------------------------------===//
// Layer 3: measureDelta vs the full measurement pipeline
//===----------------------------------------------------------------------===//

TEST(IncrementalMeasure, DeltaMatchesFullRebuild) {
  MachineModel M = MachineModel::homogeneous(3, 6);
  auto Limits = machineResources(M);

  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    DependenceDAG D = genDAG(40, 12, Seed);
    RNG Rng(Seed * 13 + 5);

    // A randomized transform sequence: each round scores several edge
    // proposals by delta, checks every one against a fresh rebuild, then
    // commits one and continues from the mutated DAG.
    for (unsigned Round = 0; Round != 4; ++Round) {
      DAGAnalysis A(D);
      HammockForest HF(D, A);
      std::vector<Measurement> Meas = measureAll(D, A, HF, M);
      IncrementalMeasurer Inc(D, A, Meas, Limits, MeasureOptions{});

      auto Pairs = independentPairs(D, A);
      if (Pairs.empty())
        break;
      DependenceDAG Committed = D;
      for (unsigned P = 0; P != 5 && P < Pairs.size(); ++P) {
        TransformProposal Prop;
        Prop.Kind = P % 2 ? TransformProposal::RegSequence
                          : TransformProposal::FUSequence;
        Prop.Res = Limits[P % Limits.size()].first;
        Prop.SeqEdges = {Pairs[Rng.below(Pairs.size())]};

        DependenceDAG Scratch = D;
        applyTransform(Scratch, Prop);

        DeltaMeasurement DM;
        ASSERT_TRUE(Inc.measureDelta(Scratch, Prop, DM))
            << "edge-only proposal must take the delta path";

        DAGAnalysis SA(Scratch);
        HammockForest SHF(Scratch, SA);
        std::vector<Measurement> SMeas = measureAll(Scratch, SA, SHF, M);
        ASSERT_EQ(DM.Required.size(), SMeas.size());
        unsigned WantExcess = 0;
        for (unsigned I = 0; I != SMeas.size(); ++I) {
          EXPECT_EQ(DM.Required[I], SMeas[I].MaxRequired)
              << "resource " << Limits[I].first.describe() << ", seed "
              << Seed;
          if (SMeas[I].MaxRequired > Limits[I].second)
            WantExcess += SMeas[I].MaxRequired - Limits[I].second;
        }
        EXPECT_EQ(DM.CritPath, SA.criticalPathLength());
        EXPECT_EQ(DM.TotalExcess, WantExcess);
        if (P == 0)
          Committed = std::move(Scratch);
      }
      D = std::move(Committed);
    }
  }
}

TEST(IncrementalMeasure, UnsafeDeltasFallBack) {
  MachineModel M = MachineModel::homogeneous(3, 6);
  auto Limits = machineResources(M);
  DependenceDAG D = genDAG(30, 10, 7);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  std::vector<Measurement> Meas = measureAll(D, A, HF, M);
  IncrementalMeasurer Inc(D, A, Meas, Limits, MeasureOptions{});
  DeltaMeasurement DM;

  // Spill proposals insert nodes — never a pure edge delta.
  TransformProposal Spill;
  Spill.Kind = TransformProposal::Spill;
  EXPECT_FALSE(Inc.measureDelta(D, Spill, DM));

  // Size mismatch: the scratch grew relative to the base.
  DependenceDAG Bigger = genDAG(35, 10, 7);
  ASSERT_NE(Bigger.size(), D.size());
  TransformProposal Seq;
  Seq.Kind = TransformProposal::FUSequence;
  EXPECT_FALSE(Inc.measureDelta(Bigger, Seq, DM));

  // A cycle-closing edge against the base closure.
  for (unsigned U = 2; U != D.size(); ++U) {
    unsigned V = A.descendants(U).findNext(2);
    if (V >= D.size())
      continue;
    Seq.SeqEdges = {{V, U}};
    EXPECT_FALSE(Inc.measureDelta(D, Seq, DM));
    break;
  }
}

//===----------------------------------------------------------------------===//
// Layer 4: the driver, end to end
//===----------------------------------------------------------------------===//

TEST(DriverIncremental, BitIdenticalAcrossAllModes) {
  // The acceptance bar: incremental scoring on/off, serial vs threaded,
  // cache on/off — every combination reproduces the reference serial
  // driver exactly, on workloads tight enough to transform and spill.
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  MachineModel M = MachineModel::homogeneous(2, 4);

  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    G.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(G));

    URSAOptions RefOpts;
    RefOpts.Threads = 1;
    RefOpts.MeasurementReuse = false;
    RefOpts.IncrementalMeasure = false;
    URSAResult Ref = runURSA(D, M, RefOpts);

    struct Mode {
      const char *Name;
      unsigned Threads;
      bool Reuse;
      bool Inc;
    };
    for (const Mode &Md : {Mode{"inc serial", 1, false, true},
                           Mode{"inc serial cache", 1, true, true},
                           Mode{"inc threads4", 4, true, true},
                           Mode{"full threads4", 4, true, false}}) {
      URSAOptions O;
      O.Threads = Md.Threads;
      O.MeasurementReuse = Md.Reuse;
      O.IncrementalMeasure = Md.Inc;
      URSAResult R = runURSA(D, M, O);
      expectSameResult(R, Ref,
                       std::string(Md.Name) + " seed " +
                           std::to_string(Seed));
    }
  }
}

TEST(DriverIncremental, FaultInjectionStaysIdentical) {
  // A persistently lying transform (FalseProgress) exercises livelock
  // detection and graceful degradation; the delta path must not change a
  // single decision along that road either.
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 3;
  DependenceDAG D = buildDAG(generateTrace(G));
  MachineModel M = MachineModel::homogeneous(2, 4);

  auto RunWith = [&](bool Inc, unsigned Threads) {
    FaultInjector FI(FaultKind::FalseProgress, 7, 0);
    URSAOptions O;
    O.Threads = Threads;
    O.IncrementalMeasure = Inc;
    O.Faults = &FI;
    return runURSA(D, M, O);
  };
  URSAResult Ref = RunWith(false, 1);
  expectSameResult(RunWith(true, 1), Ref, "inc serial under faults");
  expectSameResult(RunWith(true, 4), Ref, "inc threads4 under faults");
}

TEST(DriverIncremental, VerifyFullChecksEveryDelta) {
  // Under VerifyLevel::Full the driver differentially compares each delta
  // against a fresh build and fails the run on any divergence — so a
  // clean pass is a machine-checked equivalence proof over the whole run.
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 2;
  DependenceDAG D = buildDAG(generateTrace(G));
  MachineModel M = MachineModel::homogeneous(2, 4);

  URSAOptions O;
  O.IncrementalMeasure = true;
  O.Verify = VerifyLevel::Full;
  URSAResult R = runURSA(D, M, O);
  EXPECT_FALSE(R.VerifyFailed)
      << "incremental scoring diverged from the full rebuild";

  URSAOptions Plain;
  Plain.IncrementalMeasure = true;
  Plain.Verify = VerifyLevel::None;
  expectSameResult(runURSA(D, M, Plain), R, "verify vs plain");
}

TEST(DriverIncremental, StatsCountDeltasAndFallbacks) {
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 1;
  DependenceDAG D = buildDAG(generateTrace(G));
  // Two registers force spill proposals into the mix: spills now ride the
  // journaled EdgeDelta path (ursa.incremental.spill_deltas), sequencing
  // proposals take the classic pure-edge delta path. Nothing in this run
  // needs a fallback rebuild.
  MachineModel M = MachineModel::homogeneous(2, 2);

  uint64_t Deltas0 = statValue("ursa.driver.incremental.delta_evals");
  uint64_t Spills0 = statValue("ursa.incremental.spill_deltas");
  URSAOptions O;
  O.IncrementalMeasure = true;
  URSAResult R = runURSA(D, M, O);
  ASSERT_FALSE(R.RoundLog.empty());
  EXPECT_GT(statValue("ursa.driver.incremental.delta_evals"), Deltas0);
  EXPECT_GT(statValue("ursa.incremental.spill_deltas"), Spills0);

  // With the engine off, neither counter moves.
  uint64_t Deltas1 = statValue("ursa.driver.incremental.delta_evals");
  uint64_t Spills1 = statValue("ursa.incremental.spill_deltas");
  O.IncrementalMeasure = false;
  runURSA(D, M, O);
  EXPECT_EQ(statValue("ursa.driver.incremental.delta_evals"), Deltas1);
  EXPECT_EQ(statValue("ursa.incremental.spill_deltas"), Spills1);
}

//===----------------------------------------------------------------------===//
// Knobs: options and environment defaults
//===----------------------------------------------------------------------===//

TEST(DriverIncremental, EnvironmentDefaults) {
  ScopedEnv IncEnv("URSA_INCREMENTAL");
  unsetenv("URSA_INCREMENTAL");
  EXPECT_TRUE(defaultIncrementalMeasure()) << "on by default";
  for (const char *Off : {"0", "off", "false"}) {
    setenv("URSA_INCREMENTAL", Off, 1);
    EXPECT_FALSE(defaultIncrementalMeasure()) << Off;
  }
  setenv("URSA_INCREMENTAL", "1", 1);
  EXPECT_TRUE(defaultIncrementalMeasure());

  ScopedEnv CacheEnv("URSA_CACHE_SIZE");
  unsetenv("URSA_CACHE_SIZE");
  EXPECT_EQ(defaultMeasurementCacheSize(), 4u) << "MRU-4 by default";
  setenv("URSA_CACHE_SIZE", "9", 1);
  EXPECT_EQ(defaultMeasurementCacheSize(), 9u);
  setenv("URSA_CACHE_SIZE", "0", 1);
  EXPECT_EQ(defaultMeasurementCacheSize(), 4u) << "non-positive falls back";
  setenv("URSA_CACHE_SIZE", "junk", 1);
  EXPECT_EQ(defaultMeasurementCacheSize(), 4u) << "garbage falls back";
}

TEST(DriverIncremental, CacheSizeChangesNothingButEvictions) {
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 4;
  DependenceDAG D = buildDAG(generateTrace(G));
  MachineModel M = MachineModel::homogeneous(2, 4);

  URSAOptions Wide;
  Wide.MeasurementCacheSize = 8;
  URSAResult Ref = runURSA(D, M, Wide);

  uint64_t Evict0 = statValue("ursa.driver.measure_cache.evictions");
  URSAOptions Tiny;
  Tiny.MeasurementCacheSize = 1;
  expectSameResult(runURSA(D, M, Tiny), Ref, "cache size 1 vs 8");
  if (!Ref.RoundLog.empty())
    EXPECT_GT(statValue("ursa.driver.measure_cache.evictions"), Evict0)
        << "a one-entry cache must evict on a transforming run";
}

//===----------------------------------------------------------------------===//
// Layer 5: winner promotion through the delta closure
//===----------------------------------------------------------------------===//

TEST(WinnerPromotion, PromotedStateMatchesFreshBuild) {
  // When a delta-scored winner is applied, the driver promotes its delta
  // closure into the next round's base state (MeasuredState built from
  // DAGAnalysis::buildIncremental output) instead of re-deriving the
  // analysis from scratch. Everything downstream of the analysis must be
  // bit-identical to the from-scratch constructor.
  MachineModel M = MachineModel::homogeneous(2, 3);
  MeasureOptions MO;
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    DependenceDAG D = genDAG(30, 10, Seed);
    DAGAnalysis Base(D);
    std::vector<std::pair<unsigned, unsigned>> Pairs =
        independentPairs(D, Base);
    if (Pairs.empty())
      continue;
    std::vector<std::pair<unsigned, unsigned>> Added{
        Pairs[Seed % Pairs.size()]};
    D.addEdge(Added[0].first, Added[0].second, EdgeKind::Sequence);

    std::unique_ptr<DAGAnalysis> NA =
        DAGAnalysis::buildIncremental(D, Base, Added);
    ASSERT_TRUE(NA) << "single independent-pair edge must be provable";

    MeasuredState Fresh(D, M, MO);
    MeasuredState Promoted(D, M, MO, std::move(NA));
    expectSameAnalysis(*Promoted.A, *Fresh.A, D.size(), "promoted analysis");
    EXPECT_EQ(Promoted.TotalExcess, Fresh.TotalExcess);
    EXPECT_EQ(Promoted.CritPath, Fresh.CritPath);
    ASSERT_EQ(Promoted.Limits.size(), Fresh.Limits.size());
    for (size_t I = 0; I != Fresh.Limits.size(); ++I) {
      EXPECT_TRUE(Promoted.Limits[I].first == Fresh.Limits[I].first);
      EXPECT_EQ(Promoted.Limits[I].second, Fresh.Limits[I].second);
    }
    ASSERT_EQ(Promoted.Meas.size(), Fresh.Meas.size());
    for (size_t I = 0; I != Fresh.Meas.size(); ++I) {
      EXPECT_TRUE(Promoted.Meas[I].Res == Fresh.Meas[I].Res);
      EXPECT_EQ(Promoted.Meas[I].MaxRequired, Fresh.Meas[I].MaxRequired);
      EXPECT_EQ(Promoted.Meas[I].Chains.Chains, Fresh.Meas[I].Chains.Chains);
      EXPECT_EQ(Promoted.Meas[I].Chains.ChainOf, Fresh.Meas[I].Chains.ChainOf);
    }
  }
}

TEST(WinnerPromotion, DriverPromotesAndStaysBitIdentical) {
  // Differential acceptance for the promotion path: reuse+incremental
  // (promotions active) against the no-reuse reference, with the
  // promotions counter proving the path actually ran.
  MachineModel M = MachineModel::homogeneous(2, 3);
  uint64_t Before = statValue("ursa.driver.incremental.promotions");
  for (uint64_t Seed : {3u, 7u, 11u}) {
    DependenceDAG D = genDAG(40, 8, Seed);

    URSAOptions On;
    On.MeasurementReuse = true;
    On.IncrementalMeasure = true;
    URSAResult A = runURSA(D, M, On);

    URSAOptions Off;
    Off.MeasurementReuse = false;
    Off.IncrementalMeasure = true;
    URSAResult B = runURSA(D, M, Off);
    expectSameResult(A, B, "promotion seed " + std::to_string(Seed));

    // And against the fully conventional driver.
    URSAOptions Ref;
    Ref.MeasurementReuse = false;
    Ref.IncrementalMeasure = false;
    expectSameResult(runURSA(D, M, Ref), A,
                     "reference seed " + std::to_string(Seed));
  }
  EXPECT_GT(statValue("ursa.driver.incremental.promotions"), Before)
      << "no delta-scored winner was promoted on any seed";
}
