//===- tests/report_test.cpp - Allocation report rendering ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ursa/Report.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Report, ContainsRequirementsAndEffort) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  DependenceDAG D = buildDAG(figure2Trace());
  URSAOptions UO;
  UO.KeepLog = true;
  URSAResult R = runURSA(D, M, UO);
  std::string S = formatAllocationReport(D, R, M);
  EXPECT_NE(S.find("machine 2fu/3r"), std::string::npos);
  EXPECT_NE(S.find("fu"), std::string::npos);
  EXPECT_NE(S.find("reg(gpr)"), std::string::npos);
  // Figure 2's before-values appear.
  EXPECT_NE(S.find("| 4"), std::string::npos);
  EXPECT_NE(S.find("| 5"), std::string::npos);
  EXPECT_NE(S.find("transformation rounds"), std::string::npos);
  EXPECT_NE(S.find("rounds:\n"), std::string::npos);
}

TEST(Report, NotesResidualWhenOverLimit) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  DependenceDAG D = buildDAG(figure2Trace());
  URSAOptions UO;
  UO.MaxRounds = 0; // forbid transformations: requirements stay excessive
  URSAResult R = runURSA(D, M, UO);
  std::string S = formatAllocationReport(D, R, M);
  EXPECT_NE(S.find("residual excess remains"), std::string::npos);
  EXPECT_NE(S.find("NO"), std::string::npos);
}

TEST(Report, CleanRunHasNoResidualNote) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  DependenceDAG D = buildDAG(figure2Trace());
  URSAResult R = runURSA(D, M);
  std::string S = formatAllocationReport(D, R, M);
  EXPECT_EQ(S.find("residual"), std::string::npos);
  EXPECT_EQ(S.find("rounds:\n"), std::string::npos) << "no log requested";
}
