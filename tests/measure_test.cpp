//===- tests/measure_test.cpp - Reuse DAGs, kills, measurement (E1) -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 2 numbers exactly (experiment E1) and
/// property-tests the measurement machinery: the register requirement
/// from Dilworth + worst-case kills must equal the brute-force maximum
/// liveness over all schedules (DESIGN.md Section 5).
///
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "ursa/KillSelection.h"
#include "ursa/Measure.h"
#include "ursa/ReuseDAG.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace ursa;

namespace {

unsigned node(unsigned InstrIdx) { return DependenceDAG::nodeOf(InstrIdx); }

struct Fig2 {
  DependenceDAG D;
  DAGAnalysis A;
  HammockForest HF;

  Fig2() : D(buildDAG(figure2Trace())), A(D), HF(D, A) {}
};

} // namespace

TEST(FUReuse, IsTheDependencePartialOrder) {
  Fig2 F;
  ReuseRelation R = buildFUReuse(F.D, F.A);
  EXPECT_EQ(R.Active.size(), 11u);
  // (a,b) in CanReuse_FU iff b is a's strict descendant.
  for (unsigned X : R.Active)
    for (unsigned Y : R.Active)
      EXPECT_EQ(R.Rel.test(X, Y), F.A.reaches(X, Y));
}

TEST(FUReuse, Figure2RequiresFourFUs) {
  Fig2 F;
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(F.D, F.A, F.HF, Res);
  EXPECT_EQ(M.MaxRequired, 4u) << "paper: DAG needs 4 FUs";
}

TEST(RegReuse, Figure2RequiresFiveRegisters) {
  Fig2 F;
  ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(F.D, F.A, F.HF, Res);
  EXPECT_EQ(M.MaxRequired, 5u)
      << "paper: B, C, E, G, H can all be alive at once";
}

TEST(RegReuse, Figure2BruteForceAgrees) {
  Fig2 F;
  EXPECT_EQ(bruteForceMaxLive(F.D, F.A), 5u);
}

TEST(Kills, MaximalUseOnlyAndMinimumCover) {
  Fig2 F;
  KillMap K = selectKillsGreedy(F.D, F.A);
  // v (node A) is used by B, C, D; all are maximal; some one of them
  // kills it.
  int KA = K.KillNode[node(0)];
  EXPECT_TRUE(KA == int(node(1)) || KA == int(node(2)) || KA == int(node(3)));
  // w and x (B, C) must share their killer (E or F) under minimum cover —
  // that is what makes three values live in the {B,C,E,F} sub-DAG.
  EXPECT_EQ(K.KillNode[node(1)], K.KillNode[node(2)]);
  int Shared = K.KillNode[node(1)];
  EXPECT_TRUE(Shared == int(node(4)) || Shared == int(node(5)));
  // K (z) has no uses: killed at its own definition.
  EXPECT_EQ(K.KillNode[node(10)], int(node(10)));
}

TEST(Kills, ExactCoverNoLargerThanGreedy) {
  for (auto &[Name, T] : kernelSuite()) {
    if (T.size() > 40)
      continue; // keep the exact solver fast
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    KillMap G = selectKillsGreedy(D, A);
    KillMap E = selectKillsMinCoverExact(D, A);
    auto CoverSize = [&](const KillMap &K) {
      std::set<int> S;
      for (unsigned N = 2; N != D.size(); ++N)
        if (K.KillNode[N] >= 0 && K.KillNode[N] != int(N))
          S.insert(K.KillNode[N]);
      return S.size();
    };
    EXPECT_LE(CoverSize(E), CoverSize(G)) << Name;
  }
}

TEST(Kills, KillersAreMaximalUses) {
  GenOptions Opts;
  Opts.NumInstrs = 40;
  for (uint64_t Seed = 1; Seed != 20; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    std::vector<std::vector<unsigned>> Uses = computeUses(D);
    KillMap K = selectKillsGreedy(D, A);
    for (unsigned N = 2; N != D.size(); ++N) {
      if (D.instrAt(N).dest() < 0)
        continue;
      int Kill = K.KillNode[N];
      ASSERT_GE(Kill, 0);
      if (Kill == int(N)) {
        EXPECT_TRUE(Uses[N].empty());
        continue;
      }
      // The killer is a use, and no other use is reachable from it.
      EXPECT_TRUE(std::find(Uses[N].begin(), Uses[N].end(), unsigned(Kill)) !=
                  Uses[N].end());
      for (unsigned U : Uses[N])
        EXPECT_FALSE(A.reaches(unsigned(Kill), U));
    }
  }
}

TEST(RegReuse, RelationIsStrictOrder) {
  GenOptions Opts;
  Opts.NumInstrs = 30;
  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    ReuseRelation R = buildRegReuse(D, A, selectKillsGreedy(D, A));
    for (unsigned X : R.Active) {
      EXPECT_FALSE(R.Rel.test(X, X));
      R.Rel.row(X).forEach([&](unsigned Y) {
        EXPECT_FALSE(R.Rel.test(Y, X)) << "antisymmetry";
        // Transitivity: Y's row is contained in X's row.
        Bitset Diff = R.Rel.row(Y);
        Diff.subtract(R.Rel.row(X));
        EXPECT_TRUE(Diff.none()) << "transitivity";
      });
    }
  }
}

TEST(RegReuse, WorstCaseKillsMatchBruteForceLiveness) {
  // Exhaustive kill choice maximizing width == max schedule liveness
  // (exact on dead-value-free programs; see DESIGN.md).
  GenOptions Opts;
  Opts.NumInstrs = 9;
  Opts.NumInputs = 3;
  Opts.NumOutputs = 1;
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Checked < 25 && Seed != 120; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    if (T.size() > 18)
      continue;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    KillMap K = selectKillsExhaustiveWorstCase(D, A);
    ReuseRelation R = buildRegReuse(D, A, K);
    unsigned Width = decomposeChains(R.Rel, R.Active).width();
    EXPECT_EQ(Width, bruteForceMaxLive(D, A)) << "seed " << Seed;
    ++Checked;
  }
  EXPECT_GE(Checked, 10u);
}

TEST(RegReuse, GreedyKillsNeverBelowAnyScheduleDemand) {
  // The greedy heuristic may under- or over-shoot the exact worst case,
  // but must stay within it on these sizes; compare against exhaustive.
  GenOptions Opts;
  Opts.NumInstrs = 9;
  Opts.NumInputs = 3;
  Opts.NumOutputs = 1;
  unsigned Checked = 0, Matches = 0;
  for (uint64_t Seed = 200; Checked < 20 && Seed != 320; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    if (T.size() > 18)
      continue;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    ReuseRelation G = buildRegReuse(D, A, selectKillsGreedy(D, A));
    unsigned GreedyWidth = decomposeChains(G.Rel, G.Active).width();
    unsigned Exact = bruteForceMaxLive(D, A);
    EXPECT_LE(GreedyWidth, Exact)
        << "greedy kill choice cannot exceed the true worst case";
    Matches += GreedyWidth == Exact;
    ++Checked;
  }
  // Greedy should hit the exact bound most of the time.
  EXPECT_GE(Matches * 10, Checked * 7);
}

TEST(Measure, Figure2ExcessiveSetForThreeFUs) {
  // Paper Section 3.1: with the decomposition projected and trimmed, the
  // excessive set for FUs is {{B,E},{C,F},{G},{H}}.
  Fig2 F;
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(F.D, F.A, F.HF, Res);
  std::vector<ExcessiveChainSet> Sets = findExcessiveSets(M, F.A, F.HF, 3);
  ASSERT_FALSE(Sets.empty());
  const ExcessiveChainSet &E = Sets.front();
  EXPECT_EQ(E.Subchains.size(), 4u);

  // The paper lists {{B,E},{C,F},{G},{H}}; {{B,F},{C,E},...} is the
  // other equally minimal pairing. Check the invariant structure: G and
  // H stand alone, and B and C each pair with one of E/F.
  std::set<std::set<unsigned>> Got;
  for (const auto &C : E.Subchains)
    Got.insert(std::set<unsigned>(C.begin(), C.end()));
  EXPECT_TRUE(Got.count({node(6)})); // {G}
  EXPECT_TRUE(Got.count({node(7)})); // {H}
  bool PaperPairing = Got.count({node(1), node(4)}) &&
                      Got.count({node(2), node(5)});
  bool SwappedPairing = Got.count({node(1), node(5)}) &&
                        Got.count({node(2), node(4)});
  EXPECT_TRUE(PaperPairing || SwappedPairing);
}

TEST(Measure, ExcessiveSetInvariants) {
  // Heads pairwise independent, tails pairwise independent, size > limit.
  GenOptions Opts;
  Opts.NumInstrs = 40;
  Opts.Window = 12;
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    for (ResourceId::KindT Kind : {ResourceId::FU, ResourceId::Reg}) {
      ResourceId Res{Kind, FUKind::Universal, RegClassKind::GPR, true};
      Measurement M = measureResource(D, A, HF, Res);
      if (M.MaxRequired < 3)
        continue;
      unsigned Limit = M.MaxRequired - 1;
      for (const ExcessiveChainSet &E : findExcessiveSets(M, A, HF, Limit)) {
        auto Indep = [&](unsigned X, unsigned Y) {
          return !M.Reuse.Rel.test(X, Y) && !M.Reuse.Rel.test(Y, X);
        };
        // The witness always proves the excess and is an antichain.
        EXPECT_GT(E.Witness.size(), E.Limit);
        for (unsigned I = 0; I != E.Witness.size(); ++I)
          for (unsigned J = I + 1; J != E.Witness.size(); ++J)
            EXPECT_TRUE(Indep(E.Witness[I], E.Witness[J]));
        if (!E.Trimmed)
          continue; // degenerate fallback set; only the witness holds
        EXPECT_GT(E.Subchains.size(), E.Limit);
        for (unsigned I = 0; I != E.Subchains.size(); ++I)
          for (unsigned J = I + 1; J != E.Subchains.size(); ++J) {
            EXPECT_TRUE(Indep(E.Subchains[I].front(),
                              E.Subchains[J].front()));
            EXPECT_TRUE(Indep(E.Subchains[I].back(),
                              E.Subchains[J].back()));
          }
        // All members inside the hammock.
        const Hammock &H = HF.hammock(E.HammockIdx);
        for (const auto &C : E.Subchains)
          for (unsigned N : C)
            EXPECT_TRUE(H.Members.test(N));
      }
    }
  }
}

TEST(Measure, MachineResourcesHomogeneous) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  auto Rs = machineResources(M);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_EQ(Rs[0].first.Kind, ResourceId::FU);
  EXPECT_EQ(Rs[0].second, 4u);
  EXPECT_EQ(Rs[1].first.Kind, ResourceId::Reg);
  EXPECT_EQ(Rs[1].second, 8u);
}

TEST(Measure, MachineResourcesClassed) {
  MachineModel M = MachineModel::classed(2, 1, 1, 8, 4);
  auto Rs = machineResources(M);
  ASSERT_EQ(Rs.size(), 5u); // 3 FU classes + 2 reg classes
}

TEST(Measure, PerClassRequirementsPartitionDefs) {
  Trace T = mixedClassTrace(3);
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  KillMap K = selectKillsGreedy(D, A);
  ReuseRelation All = buildRegReuse(D, A, K);
  ReuseRelation G = buildRegReuseForClass(D, A, K, RegClassKind::GPR);
  ReuseRelation F = buildRegReuseForClass(D, A, K, RegClassKind::FPR);
  EXPECT_EQ(G.Active.size() + F.Active.size(), All.Active.size());
  EXPECT_FALSE(F.Active.empty());
}

TEST(Measure, FUClassRequirementsRestrictToClassOps) {
  Trace T = mixedClassTrace(3);
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  ReuseRelation Mem = buildFUReuseForClass(D, A, FUKind::Memory);
  for (unsigned N : Mem.Active)
    EXPECT_EQ(D.instrAt(N).fuKind(), FUKind::Memory);
  ReuseRelation Flt = buildFUReuseForClass(D, A, FUKind::FloatALU);
  EXPECT_FALSE(Flt.Active.empty());
}

TEST(Measure, RequirementNeverBelowObservedConcurrency) {
  // Any antichain of defs is schedulable concurrently, so MaxRequired
  // upper-bounds... and equals the relation width by construction; check
  // the cross-measure inequality FU >= widest single-cycle demand.
  Fig2 F;
  ResourceId FuRes{ResourceId::FU, FUKind::Universal, RegClassKind::GPR,
                   true};
  Measurement FuM = measureResource(F.D, F.A, F.HF, FuRes);
  std::vector<unsigned> AC = maxAntichain(FuM.Reuse.Rel, FuM.Reuse.Active);
  EXPECT_EQ(AC.size(), FuM.MaxRequired);
}

TEST(Measure, UntrimmedFallbackExposesFullProjection) {
  // Regression for the degenerate-trimming fallback in findExcessiveSets:
  // when head/tail trimming eats whole subchains and collapses the set to
  // Limit or fewer, the fallback must hand out the *untrimmed* hammock
  // projection in BOTH Subchains and FullChains (a move before the copy
  // once left one of them reading a moved-from vector) with
  // Trimmed == false. Generated workloads almost never trip this, so the
  // degenerate measurement is forged directly: three pairwise-independent
  // singleton chains {a},{b},{c} that all precede a fourth chain's head
  // {d}. With Limit = 2 the head rule erases {a} and then {b} entirely,
  // leaving two subchains — not enough — while the witness {a,b,c}
  // still proves the excess.
  Fig2 F;
  unsigned N = F.D.size();

  // Four nodes sharing one hammock (the widest one spans the trace).
  unsigned Widest = 0;
  for (unsigned HIdx : F.HF.innermostFirst())
    if (F.HF.hammock(HIdx).Members.count() >
        F.HF.hammock(Widest).Members.count())
      Widest = HIdx;
  std::vector<unsigned> Picked;
  F.HF.hammock(Widest).Members.forEach([&](unsigned Node) {
    if (Picked.size() < 4)
      Picked.push_back(Node);
  });
  ASSERT_EQ(Picked.size(), 4u);
  unsigned A = Picked[0], B = Picked[1], C = Picked[2], D = Picked[3];

  Measurement M;
  M.Res = ResourceId{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR,
                     true};
  M.MaxRequired = 3;
  M.Reuse.Rel = BitMatrix(N);
  M.Reuse.Rel.set(A, D);
  M.Reuse.Rel.set(B, D);
  M.Reuse.Rel.set(C, D);
  M.Reuse.Active = {A, B, C, D};
  M.Chains.Chains = {{A}, {B}, {C}, {D}};
  M.Chains.ChainOf.assign(N, -1);
  for (unsigned I = 0; I != 4; ++I)
    M.Chains.ChainOf[Picked[I]] = int(I);

  bool SawFallback = false;
  for (const ExcessiveChainSet &E : findExcessiveSets(M, F.A, F.HF, 2)) {
    EXPECT_GT(E.Witness.size(), E.Limit);
    if (E.Trimmed) {
      EXPECT_GT(E.Subchains.size(), E.Limit);
      continue;
    }
    SawFallback = true;
    // The fallback invariant under test: both views hold the identical,
    // complete untrimmed projection.
    EXPECT_EQ(E.Subchains, E.FullChains);
    ASSERT_EQ(E.Subchains.size(), 4u);
    for (const auto &Chain : E.Subchains)
      EXPECT_FALSE(Chain.empty());
  }
  EXPECT_TRUE(SawFallback) << "forged measurement must take the fallback";
}

namespace {

/// The pre-optimization findExcessiveSets, transcribed verbatim as the
/// reference for the incremental trimming loop: after every single trim it
/// restarts the full pair scan (the O(chains^3) behavior the production
/// loop now avoids). The production loop must reproduce its exact trim
/// sequence, so the outputs must match field for field.
std::vector<ExcessiveChainSet>
referenceExcessiveSets(const Measurement &Meas, const HammockForest &HF,
                       unsigned Limit) {
  std::vector<ExcessiveChainSet> Out;
  if (Meas.MaxRequired <= Limit)
    return Out;

  for (unsigned HIdx : HF.innermostFirst()) {
    const Hammock &H = HF.hammock(HIdx);

    std::vector<unsigned> InHammock;
    for (unsigned N : Meas.Reuse.Active)
      if (H.Members.test(N))
        InHammock.push_back(N);
    if (InHammock.size() <= Limit)
      continue;
    std::vector<unsigned> Witness = maxAntichain(Meas.Reuse.Rel, InHammock);
    if (Witness.size() <= Limit)
      continue;

    std::vector<std::vector<unsigned>> Sub, Full;
    for (const auto &Chain : Meas.Chains.Chains) {
      std::vector<unsigned> S;
      for (unsigned N : Chain)
        if (H.Members.test(N))
          S.push_back(N);
      if (!S.empty()) {
        Full.push_back(S);
        Sub.push_back(std::move(S));
      }
    }
    std::vector<std::vector<unsigned>> Untrimmed = Sub;

    RelationView Rel = Meas.Reuse.Rel;
    bool Changed = true;
    while (Changed && Sub.size() > Limit) {
      Changed = false;
      for (unsigned I = 0; I != Sub.size() && !Changed; ++I) {
        for (unsigned J = 0; J != Sub.size() && !Changed; ++J) {
          if (I == J)
            continue;
          if (Rel.test(Sub[I].front(), Sub[J].front())) {
            Sub[I].erase(Sub[I].begin());
            Changed = true;
          } else if (Rel.test(Sub[J].back(), Sub[I].back())) {
            Sub[I].pop_back();
            Changed = true;
          }
        }
      }
      for (unsigned I = Sub.size(); I-- > 0;) {
        if (Sub[I].empty()) {
          Sub.erase(Sub.begin() + I);
          Full.erase(Full.begin() + I);
        }
      }
    }

    ExcessiveChainSet E;
    E.Res = Meas.Res;
    E.HammockIdx = HIdx;
    E.Limit = Limit;
    if (Sub.size() > Limit) {
      E.Subchains = std::move(Sub);
      E.FullChains = std::move(Full);
    } else {
      E.Trimmed = false;
      E.Subchains = Untrimmed;
      E.FullChains = std::move(Untrimmed);
    }
    E.Witness = std::move(Witness);
    Out.push_back(std::move(E));
  }
  return Out;
}

void expectSameSets(const std::vector<ExcessiveChainSet> &Got,
                    const std::vector<ExcessiveChainSet> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (unsigned I = 0; I != Got.size(); ++I) {
    EXPECT_EQ(Got[I].HammockIdx, Want[I].HammockIdx);
    EXPECT_EQ(Got[I].Limit, Want[I].Limit);
    EXPECT_EQ(Got[I].Trimmed, Want[I].Trimmed);
    EXPECT_EQ(Got[I].Subchains, Want[I].Subchains);
    EXPECT_EQ(Got[I].FullChains, Want[I].FullChains);
    EXPECT_EQ(Got[I].Witness, Want[I].Witness);
  }
}

} // namespace

TEST(Measure, TrimLoopMatchesRestartingReference) {
  // The incremental trimming loop must be a pure speedup: identical trim
  // sequence, identical sets, at every limit, on both resources.
  GenOptions Opts;
  Opts.NumInstrs = 40;
  Opts.Window = 12;
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    for (ResourceId::KindT Kind : {ResourceId::FU, ResourceId::Reg}) {
      ResourceId Res{Kind, FUKind::Universal, RegClassKind::GPR, true};
      Measurement M = measureResource(D, A, HF, Res);
      for (unsigned Limit = 1; Limit < M.MaxRequired; ++Limit)
        expectSameSets(findExcessiveSets(M, A, HF, Limit),
                       referenceExcessiveSets(M, HF, Limit));
    }
  }
}

TEST(Measure, TrimLoopManyChainHammock) {
  // The regression target: hammocks holding dozens of parallel chains,
  // where the restart-on-change scan went cubic. The Chains shape builds
  // them directly: NumInputs independent chains joined at the end. Tight
  // limits force the longest trim sequences.
  GenOptions Opts;
  Opts.Shape = GenOptions::ShapeKind::Chains;
  Opts.NumInstrs = 120;
  Opts.NumInputs = 24;
  for (uint64_t Seed : {2ull, 9ull}) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR,
                   true};
    Measurement M = measureResource(D, A, HF, Res);
    ASSERT_GT(M.MaxRequired, 8u) << "workload no longer wide enough";
    for (unsigned Limit : {1u, 2u, M.MaxRequired / 2})
      expectSameSets(findExcessiveSets(M, A, HF, Limit),
                     referenceExcessiveSets(M, HF, Limit));
  }
}
