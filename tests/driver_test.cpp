//===- tests/driver_test.cpp - URSA driver loop (incl. E5) ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Driver, Figure3dTwoFUsThreeRegisters) {
  // E5: the paper's combined example — transform figure 2 down to a
  // machine with 2 FUs and 3 registers.
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  EXPECT_TRUE(R.WithinLimits);
  ASSERT_EQ(R.FinalRequired.size(), 2u);
  EXPECT_LE(R.FinalRequired[0], 2u) << "FU requirement";
  EXPECT_LE(R.FinalRequired[1], 3u) << "register requirement";
}

TEST(Driver, Figure2AmpleMachineNeedsNoWork) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  EXPECT_TRUE(R.WithinLimits);
  EXPECT_EQ(R.Rounds, 0u);
  EXPECT_EQ(R.SeqEdgesAdded, 0u);
  EXPECT_EQ(R.SpillsInserted, 0u);
  EXPECT_EQ(R.CritPathBefore, R.CritPathAfter);
}

TEST(Driver, KernelsFitModestMachines) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (auto &[Name, T] : kernelSuite()) {
    URSAResult R = runURSA(buildDAG(T), M);
    EXPECT_TRUE(R.WithinLimits) << Name;
  }
}

TEST(Driver, TightMachineForcesTransformsAndBoundsResidual) {
  // On a very tight machine the heuristics may leave a small register
  // residual for the assignment phase (paper Section 2) — but FUs must
  // always fit and the residual must be small.
  MachineModel M = MachineModel::homogeneous(2, 4);
  for (auto &[Name, T] : kernelSuite()) {
    DependenceDAG D0 = buildDAG(T);
    DAGAnalysis A(D0);
    HammockForest HF(D0, A);
    std::vector<Measurement> Before = measureAll(D0, A, HF, M);
    URSAResult R = runURSA(std::move(D0), M);
    EXPECT_LE(R.FinalRequired[0], 2u) << Name << ": FU must fit";
    // Kernels with many long-lived multi-use values (FIR coefficients)
    // can leave one extra register of certified residual on a 4-register
    // machine; the assignment phase absorbs it.
    EXPECT_LE(R.FinalRequired[1], 4u + 3u) << Name << ": residual too big";
    if (Before[1].MaxRequired > 4)
      EXPECT_LT(R.FinalRequired[1], Before[1].MaxRequired)
          << Name << ": registers must improve";
    if (T.size() > 10)
      EXPECT_GT(R.Rounds, 0u) << Name;
  }
}

TEST(Driver, AllOrderingsConverge) {
  MachineModel M = MachineModel::homogeneous(3, 5);
  GenOptions Opts;
  Opts.NumInstrs = 35;
  Opts.Window = 12;
  for (uint64_t Seed = 1; Seed != 8; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    for (PhaseOrdering O : {PhaseOrdering::RegistersFirst,
                            PhaseOrdering::FUsFirst,
                            PhaseOrdering::Integrated}) {
      URSAOptions UO;
      UO.Order = O;
      URSAResult R = runURSA(buildDAG(T), M, UO);
      EXPECT_TRUE(R.WithinLimits)
          << "seed " << Seed << " ordering " << int(O);
    }
  }
}

TEST(Driver, RequirementsNeverIncreaseAcrossRun) {
  // Initial requirement >= final requirement for both resources.
  MachineModel M = MachineModel::homogeneous(2, 4);
  GenOptions Opts;
  Opts.NumInstrs = 30;
  Opts.Window = 10;
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    std::vector<Measurement> Before = measureAll(D, A, HF, M);
    URSAResult R = runURSA(std::move(D), M);
    for (unsigned I = 0; I != Before.size(); ++I)
      EXPECT_LE(R.FinalRequired[I],
                std::max(Before[I].MaxRequired,
                         machineResources(M)[I].second))
          << "seed " << Seed;
  }
}

TEST(Driver, LogRecordsRounds) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  EXPECT_EQ(R.RoundLog.size(), R.Rounds);
  std::vector<std::string> Log = R.formatLog();
  ASSERT_EQ(Log.size(), R.Rounds);
  for (const std::string &L : Log)
    EXPECT_FALSE(L.empty());
}

TEST(Driver, RoundTelemetryMatchesResultAccounting) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  ASSERT_GT(R.Rounds, 0u);
  ASSERT_EQ(R.RoundLog.size(), R.Rounds);
  unsigned Edges = 0, Spills = 0;
  for (unsigned I = 0; I != R.RoundLog.size(); ++I) {
    const RoundRecord &RR = R.RoundLog[I];
    EXPECT_EQ(RR.Round, I + 1);
    EXPECT_FALSE(RR.Resource.empty());
    EXPECT_FALSE(RR.Detail.empty());
    // The driver only keeps never-worsening transforms.
    EXPECT_LE(RR.ExcessAfter, RR.ExcessBefore);
    EXPECT_GE(RR.ProposalsTried, 1u);
    EXPECT_GE(RR.DurationMs, 0.0);
    Edges += RR.EdgesAdded;
    Spills += RR.SpillsInserted;
  }
  // No fallback ran, so every edge/spill came from a logged round.
  EXPECT_FALSE(R.FallbackUsed);
  EXPECT_EQ(Edges, R.SeqEdgesAdded);
  EXPECT_EQ(Spills, R.SpillsInserted);
  // Converged run: nothing tripped a safety valve.
  EXPECT_TRUE(R.StopReasons.empty());
}

TEST(Driver, SingleFUMachineFullySequentializes) {
  MachineModel M = MachineModel::homogeneous(1, 4);
  URSAResult R = runURSA(buildDAG(dotProductTrace(4)), M);
  EXPECT_TRUE(R.WithinLimits);
  EXPECT_LE(R.FinalRequired[0], 1u);
}

TEST(Driver, ClassedMachineMeasuresPerClass) {
  MachineModel M = MachineModel::classed(2, 2, 2, 8, 6);
  URSAResult R = runURSA(buildDAG(mixedClassTrace(4)), M);
  EXPECT_EQ(R.FinalRequired.size(), machineResources(M).size());
  EXPECT_TRUE(R.WithinLimits);
}

TEST(Driver, ClassedMachineTightFloatRegs) {
  MachineModel M = MachineModel::classed(2, 1, 2, 8, 6);
  URSAResult R = runURSA(buildDAG(butterflyTrace(3)), M);
  EXPECT_TRUE(R.WithinLimits);
}
