//===- tests/unroll_test.cpp - CFG loop unrolling -------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"
#include "cfg/CFGParser.h"
#include "cfg/Unroll.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// dot-product-flavored loop: acc += i*i while i-- > 0.
const char *LoopSource = R"(
func squares {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.95 : exit
block exit:
  ret
}
)";

/// The loop body needs a zero; patch: define z0 in the loop block.
const char *Source = R"(
func squares {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  z0 = ldi 0
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.95 : exit
block exit:
  ret
}
)";

MemoryState inputs(int64_t N) {
  MemoryState In;
  In["i"] = Value::ofInt(N);
  return In;
}

int64_t sumOfSquares(int64_t N) {
  int64_t S = 0;
  for (int64_t I = N; I > 0; --I)
    S += I * I;
  return S;
}

} // namespace

TEST(Unroll, FindsSelfLoops) {
  (void)LoopSource;
  CFGFunction F = parseCFGOrDie(Source);
  std::vector<unsigned> Loops = findSelfLoops(F);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(F.block(Loops[0]).Name, "loop");
}

TEST(Unroll, FactorOneIsIdentity) {
  CFGFunction F = parseCFGOrDie(Source);
  CFGFunction U = unrollLoops(F, 1);
  EXPECT_EQ(U.str(), F.str());
}

TEST(Unroll, ProducesChainOfCopies) {
  CFGFunction F = parseCFGOrDie(Source);
  CFGFunction U = unrollLoops(F, 4);
  EXPECT_EQ(U.numBlocks(), F.numBlocks() + 3);
  EXPECT_TRUE(U.verify().empty());
  // loop -> loop.u2 -> loop.u3 -> loop.u4 -> loop.
  int L = U.blockByName("loop");
  int U2 = U.blockByName("loop.u2");
  int U4 = U.blockByName("loop.u4");
  ASSERT_GE(L, 0);
  ASSERT_GE(U2, 0);
  ASSERT_GE(U4, 0);
  EXPECT_EQ(U.block(L).Term.TakenBlock, U2);
  EXPECT_EQ(U.block(U4).Term.TakenBlock, L);
  // Copies keep the exit arm.
  EXPECT_EQ(U.block(U4).Term.FallBlock, U.blockByName("exit"));
}

TEST(Unroll, SemanticsPreservedForAllTripCounts) {
  CFGFunction F = parseCFGOrDie(Source);
  for (unsigned Factor : {2u, 3u, 4u, 8u}) {
    CFGFunction U = unrollLoops(F, Factor);
    for (int64_t N : {0, 1, 2, 3, 5, 9, 16}) {
      CFGExecResult Want = interpretCFG(F, inputs(N));
      CFGExecResult Got = interpretCFG(U, inputs(N));
      ASSERT_TRUE(Want.Ok && Got.Ok);
      EXPECT_EQ(Got.Memory["acc"].I, sumOfSquares(N))
          << "factor " << Factor << " n " << N;
      EXPECT_EQ(Got.Memory, Want.Memory);
    }
  }
}

TEST(Unroll, UnrolledChainFormsOneTrace) {
  CFGFunction U = unrollLoops(parseCFGOrDie(Source), 4);
  TraceSet TS = formTraces(U);
  int L = U.blockByName("loop");
  int U4 = U.blockByName("loop.u4");
  ASSERT_GE(TS.TraceOf[L], 0);
  EXPECT_EQ(TS.TraceOf[L], TS.TraceOf[U4])
      << "the unrolled copies must share one trace";
  const FormedTrace &FT = TS.Traces[unsigned(TS.TraceOf[L])];
  EXPECT_EQ(FT.Blocks.size(), 4u);
  EXPECT_EQ(FT.SideExits.size(), 4u) << "one exit test per iteration";
}

TEST(Unroll, CompiledUnrolledLoopMatchesInterpreter) {
  CFGFunction F = parseCFGOrDie(Source);
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (unsigned Factor : {1u, 2u, 4u}) {
    CFGFunction U = unrollLoops(F, Factor);
    CompiledCFG C = compileCFGWithURSA(U, M);
    ASSERT_TRUE(C.Ok) << C.Error;
    for (int64_t N : {0, 1, 5, 13}) {
      CFGExecResult Want = interpretCFG(F, inputs(N));
      CFGExecResult Got = runCompiledCFG(U, C, inputs(N));
      ASSERT_TRUE(Got.Ok) << Got.Error;
      EXPECT_EQ(Got.Memory, Want.Memory)
          << "factor " << Factor << " n " << N;
    }
  }
}

TEST(Unroll, UnrollingReducesDynamicCycles) {
  // The whole point of the Section 6 extension: more iterations per
  // trace means fewer cycles per iteration on a wide machine.
  CFGFunction F = parseCFGOrDie(Source);
  MachineModel M = MachineModel::homogeneous(4, 12);
  const int64_t N = 48;
  unsigned CyclesAt1 = 0, CyclesAt4 = 0;
  for (unsigned Factor : {1u, 4u}) {
    CFGFunction U = unrollLoops(F, Factor);
    CompiledCFG C = compileCFGWithURSA(U, M);
    ASSERT_TRUE(C.Ok) << C.Error;
    CFGExecResult Got = runCompiledCFG(U, C, inputs(N));
    ASSERT_TRUE(Got.Ok) << Got.Error;
    EXPECT_EQ(Got.Memory["acc"].I, sumOfSquares(N));
    (Factor == 1 ? CyclesAt1 : CyclesAt4) = Got.Cycles;
  }
  EXPECT_LT(CyclesAt4, CyclesAt1)
      << "4x unroll must run fewer total cycles on a 4-wide machine";
}
