//===- tests/histogram_test.cpp - obs::Histogram unit tests ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"
#include "obs/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

using namespace ursa;
using obs::Histogram;
using obs::HistogramSnapshot;

URSA_HISTO(TestHisto, "test.histo.alpha_us", "histogram test fixture");
URSA_HISTO(TestHistoB, "test.histo.beta_us", "second fixture");

namespace {

/// Fresh state for every test: histograms are process-global statics.
struct HistogramTest : ::testing::Test {
  void SetUp() override {
    obs::setStatsEnabled(true);
    obs::resetHistograms();
  }
  void TearDown() override {
    obs::setStatsEnabled(true);
    obs::resetHistograms();
  }
};

} // namespace

TEST_F(HistogramTest, ExactBucketsBelowSixteen) {
  for (uint64_t V = 0; V != 16; ++V) {
    EXPECT_EQ(Histogram::bucketIndex(V), unsigned(V));
    EXPECT_EQ(Histogram::bucketLo(unsigned(V)), V);
    EXPECT_EQ(Histogram::bucketHi(unsigned(V)), V + 1); // exclusive edge
  }
}

TEST_F(HistogramTest, BucketEdgesContainTheirValues) {
  // Every probe value must land in a bucket whose [lo, hi) contains it,
  // and the bucket's relative width bounds the quantile error (~12.5%).
  for (uint64_t V : {16ull, 17ull, 100ull, 1000ull, 4096ull, 65535ull,
                     1000000ull, 123456789ull, (1ull << 37) - 1}) {
    unsigned I = Histogram::bucketIndex(V);
    EXPECT_GE(V, Histogram::bucketLo(I)) << V;
    EXPECT_LT(V, Histogram::bucketHi(I)) << V;
    double Width = double(Histogram::bucketHi(I) - Histogram::bucketLo(I));
    EXPECT_LE(Width / double(std::max<uint64_t>(1, Histogram::bucketLo(I))),
              0.2601)
        << "bucket too wide at " << V;
  }
}

TEST_F(HistogramTest, PercentileIsUpperBoundWithinBucketError) {
  std::vector<uint64_t> Values;
  for (uint64_t V = 1; V <= 10000; V += 7) {
    Values.push_back(V);
    TestHisto.record(V);
  }
  std::sort(Values.begin(), Values.end());
  HistogramSnapshot S = TestHisto.snapshot();
  ASSERT_EQ(S.Count, Values.size());
  for (double P : {0.5, 0.9, 0.99}) {
    uint64_t True =
        Values[std::min(Values.size() - 1,
                        size_t(P * double(Values.size())))];
    uint64_t Est = S.percentile(P);
    EXPECT_GE(Est, True) << "p" << P * 100 << " not an upper bound";
    EXPECT_LE(double(Est), double(True) * 1.13 + 1)
        << "p" << P * 100 << " beyond the bucket error bound";
  }
  EXPECT_EQ(S.percentile(1.0), S.Max);
}

TEST_F(HistogramTest, MaxClampsPercentile) {
  TestHisto.record(1000);
  HistogramSnapshot S = TestHisto.snapshot();
  // One sample: every quantile is that sample's bucket, clamped to the
  // exact observed max rather than the bucket's upper edge.
  EXPECT_EQ(S.percentile(0.5), 1000u);
  EXPECT_EQ(S.percentile(0.99), 1000u);
  EXPECT_EQ(S.Max, 1000u);
}

TEST_F(HistogramTest, OverflowBucketCatchesHugeValues) {
  uint64_t Huge = 1ull << 40; // beyond the last octave
  TestHisto.record(Huge);
  HistogramSnapshot S = TestHisto.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Buckets[Histogram::NumBuckets - 1], 1u);
  EXPECT_EQ(S.Max, Huge);
  EXPECT_EQ(S.percentile(0.5), Huge); // clamped to Max, not UINT64_MAX
}

TEST_F(HistogramTest, MergeAddsEverything) {
  TestHisto.record(5);
  TestHisto.record(100);
  TestHistoB.record(100);
  TestHistoB.record(1ull << 40);
  HistogramSnapshot A = TestHisto.snapshot();
  HistogramSnapshot B = TestHistoB.snapshot();
  A.merge(B);
  EXPECT_EQ(A.Count, 4u);
  EXPECT_EQ(A.Sum, 5u + 100u + 100u + (1ull << 40));
  EXPECT_EQ(A.Max, 1ull << 40);
  EXPECT_EQ(A.Buckets[Histogram::bucketIndex(100)], 2u);
  EXPECT_EQ(A.Buckets[Histogram::NumBuckets - 1], 1u);
}

//===----------------------------------------------------------------------===//
// Merge algebra: the properties the fleet roll-up leans on
//===----------------------------------------------------------------------===//

namespace {

/// Builds a snapshot from a deterministic pseudo-random value stream (a
/// split-mix step), spanning exact buckets, octave buckets, and (seed 3)
/// the overflow bucket. Returns the raw values for ground truth.
std::vector<uint64_t> fillSnapshot(Histogram &H, uint64_t Seed, unsigned N) {
  std::vector<uint64_t> Values;
  uint64_t X = Seed * 0x9E3779B97F4A7C15ull + 1;
  for (unsigned I = 0; I != N; ++I) {
    X ^= X >> 30;
    X *= 0xBF58476D1CE4E5B9ull;
    X ^= X >> 27;
    uint64_t V = X % (Seed == 3 && I % 97 == 0 ? (1ull << 40) : 200000ull);
    Values.push_back(V);
    H.record(V);
  }
  return Values;
}

bool snapshotsEqual(const HistogramSnapshot &A, const HistogramSnapshot &B) {
  return A.Count == B.Count && A.Sum == B.Sum && A.Max == B.Max &&
         A.Buckets == B.Buckets;
}

} // namespace

TEST_F(HistogramTest, MergeIsCommutative) {
  fillSnapshot(TestHisto, 1, 500);
  fillSnapshot(TestHistoB, 2, 300);
  HistogramSnapshot A = TestHisto.snapshot();
  HistogramSnapshot B = TestHistoB.snapshot();

  HistogramSnapshot AB = A;
  AB.merge(B);
  HistogramSnapshot BA = B;
  BA.merge(A);
  EXPECT_TRUE(snapshotsEqual(AB, BA));
}

TEST_F(HistogramTest, MergeIsAssociative) {
  // Three shards folded ((A+B)+C) and (A+(B+C)) — the router may fetch
  // backends in any order and fold incrementally; the result must not
  // depend on it.
  fillSnapshot(TestHisto, 1, 400);
  HistogramSnapshot A = TestHisto.snapshot();
  obs::resetHistograms();
  fillSnapshot(TestHisto, 2, 350);
  HistogramSnapshot B = TestHisto.snapshot();
  obs::resetHistograms();
  fillSnapshot(TestHisto, 3, 450);
  HistogramSnapshot C = TestHisto.snapshot();

  HistogramSnapshot L = A; // (A+B)+C
  L.merge(B);
  L.merge(C);
  HistogramSnapshot BC = B; // A+(B+C)
  BC.merge(C);
  HistogramSnapshot R = A;
  R.merge(BC);
  EXPECT_TRUE(snapshotsEqual(L, R));
}

TEST_F(HistogramTest, MergePreservesEveryCount) {
  // Count, Sum, and every bucket add exactly: merging N shards reports
  // precisely the union of their observations, nothing created or lost.
  auto VA = fillSnapshot(TestHisto, 1, 600);
  auto VB = fillSnapshot(TestHistoB, 3, 500);
  HistogramSnapshot A = TestHisto.snapshot();
  HistogramSnapshot B = TestHistoB.snapshot();
  HistogramSnapshot M = A;
  M.merge(B);

  EXPECT_EQ(M.Count, uint64_t(VA.size() + VB.size()));
  uint64_t Sum = 0;
  for (uint64_t V : VA)
    Sum += V;
  for (uint64_t V : VB)
    Sum += V;
  EXPECT_EQ(M.Sum, Sum);
  EXPECT_EQ(M.Max, std::max(A.Max, B.Max));
  uint64_t BucketTotal = 0;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
    EXPECT_EQ(M.Buckets[I], A.Buckets[I] + B.Buckets[I]);
    BucketTotal += M.Buckets[I];
  }
  EXPECT_EQ(BucketTotal, M.Count);
}

TEST_F(HistogramTest, MergedPercentilesKeepTheBucketErrorBound) {
  // The fleet property: a percentile read from merged shard snapshots
  // obeys the same upper-bound-within-~12.5% contract as a single
  // histogram over the union of the values.
  auto VA = fillSnapshot(TestHisto, 1, 800);
  auto VB = fillSnapshot(TestHistoB, 2, 700);
  HistogramSnapshot M = TestHisto.snapshot();
  M.merge(TestHistoB.snapshot());

  std::vector<uint64_t> Union = VA;
  Union.insert(Union.end(), VB.begin(), VB.end());
  std::sort(Union.begin(), Union.end());
  for (double P : {0.5, 0.9, 0.99}) {
    // Same rank convention as HistogramSnapshot::percentile: 1-indexed
    // ceil(P * Count).
    size_t Rank = size_t(std::ceil(P * double(Union.size())));
    uint64_t True = Union[std::min(Union.size() - 1, Rank ? Rank - 1 : 0)];
    uint64_t Est = M.percentile(P);
    EXPECT_GE(Est, True) << "merged p" << P * 100 << " not an upper bound";
    // Sub-octave buckets have edges at 2^k * {1, 1.25, 1.5, 1.75}, so the
    // answer can overshoot by at most one bucket width: a factor of 1.25.
    EXPECT_LE(double(Est), double(True) * 1.25 + 1)
        << "merged p" << P * 100 << " beyond the bucket error bound";
  }
  EXPECT_EQ(M.percentile(1.0), M.Max);
}

TEST_F(HistogramTest, MergeWithEmptyIsIdentity) {
  fillSnapshot(TestHisto, 1, 200);
  HistogramSnapshot A = TestHisto.snapshot();
  HistogramSnapshot Empty = TestHistoB.snapshot();
  HistogramSnapshot M = A;
  M.merge(Empty);
  EXPECT_TRUE(snapshotsEqual(M, A));
  HistogramSnapshot M2 = Empty;
  M2.merge(A);
  EXPECT_TRUE(snapshotsEqual(M2, A));
}

TEST_F(HistogramTest, DisabledSitesRecordNothing) {
  obs::setStatsEnabled(false);
  TestHisto.record(42);
  TestHisto.recordMs(1.5);
  obs::setStatsEnabled(true);
  EXPECT_EQ(TestHisto.count(), 0u);
  TestHisto.record(42);
  EXPECT_EQ(TestHisto.count(), 1u);
}

TEST_F(HistogramTest, RegistrySnapshotFindsAndFilters) {
  TestHisto.record(7);
  bool FoundAlpha = false, FoundBeta = false;
  std::string Prev;
  for (const HistogramSnapshot &S :
       obs::snapshotHistograms(/*NonZeroOnly=*/false)) {
    EXPECT_LE(Prev, S.Name) << "snapshot not sorted";
    Prev = S.Name;
    FoundAlpha |= S.Name == "test.histo.alpha_us";
    FoundBeta |= S.Name == "test.histo.beta_us";
  }
  EXPECT_TRUE(FoundAlpha);
  EXPECT_TRUE(FoundBeta);
  for (const HistogramSnapshot &S :
       obs::snapshotHistograms(/*NonZeroOnly=*/true)) {
    EXPECT_NE(S.Count, 0u);
    EXPECT_NE(S.Name, "test.histo.beta_us"); // empty: filtered out
  }
}

TEST_F(HistogramTest, ResetZeroes) {
  TestHisto.record(3);
  TestHisto.record(1ull << 20);
  obs::resetHistograms();
  HistogramSnapshot S = TestHisto.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0u);
  EXPECT_EQ(S.Max, 0u);
  for (uint64_t B : S.Buckets)
    EXPECT_EQ(B, 0u);
}

TEST_F(HistogramTest, ConcurrentRecordingLosesNothing) {
  // Relaxed atomics may interleave but never drop: the count and sum
  // must be exact across threads. TSan runs this too (CI tsan job).
  constexpr unsigned Threads = 8, PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([T] {
      for (unsigned I = 0; I != PerThread; ++I)
        TestHisto.record((T * PerThread + I) % 5000);
    });
  for (std::thread &T : Ts)
    T.join();
  HistogramSnapshot S = TestHisto.snapshot();
  EXPECT_EQ(S.Count, uint64_t(Threads) * PerThread);
  uint64_t BucketTotal = 0;
  for (uint64_t B : S.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, S.Count);
}
