//===- tests/transforms_test.cpp - Figure 3 reproductions (E2-E5) ---------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 3 transformation outcomes on the
/// Figure 2 DAG and property-tests the three transformations: they only
/// ever *remove* schedules (requirements never increase), they keep the
/// DAG acyclic, and spilling preserves program semantics.
///
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "ursa/Driver.h"
#include "ursa/Measure.h"
#include "ursa/Transforms.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

ResourceId fuRes() {
  return {ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
}
ResourceId regRes() {
  return {ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true};
}

/// Measures one resource on a fresh analysis of \p D.
unsigned requirementOf(const DependenceDAG &D, ResourceId Res) {
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  return measureResource(D, A, HF, Res).MaxRequired;
}

/// Applies the best proposal (by remeasured requirement of \p Res) from
/// \p Props; returns the transformed DAG.
DependenceDAG applyBest(const DependenceDAG &D,
                        const std::vector<TransformProposal> &Props,
                        ResourceId Res) {
  EXPECT_FALSE(Props.empty());
  DependenceDAG Best = D;
  unsigned BestReq = ~0u;
  for (const TransformProposal &P : Props) {
    DependenceDAG Scratch = D;
    applyTransform(Scratch, P);
    unsigned Req = requirementOf(Scratch, Res);
    if (Req < BestReq) {
      BestReq = Req;
      Best = std::move(Scratch);
    }
  }
  return Best;
}

std::vector<ExcessiveChainSet>
excessiveSets(const DependenceDAG &D, ResourceId Res, unsigned Limit) {
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  Measurement M = measureResource(D, A, HF, Res);
  return findExcessiveSets(M, A, HF, Limit);
}

} // namespace

TEST(FUSequencing, Figure3aReducesFourToThree) {
  DependenceDAG D = buildDAG(figure2Trace());
  ASSERT_EQ(requirementOf(D, fuRes()), 4u);

  std::vector<ExcessiveChainSet> Sets = excessiveSets(D, fuRes(), 3);
  ASSERT_FALSE(Sets.empty());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  TransformContext Ctx{D, A, HF};
  std::vector<TransformProposal> Props =
      proposeFUSequencing(Ctx, Sets.front());
  ASSERT_FALSE(Props.empty());

  DependenceDAG After = applyBest(D, Props, fuRes());
  EXPECT_EQ(requirementOf(After, fuRes()), 3u) << "paper Figure 3(a)";
  // One sequence edge suffices and the critical path grows by at most 1
  // (the paper's G->H edge also lengthens the G-side path to 7 edges).
  EXPECT_LE(DAGAnalysis(After).criticalPathLength(), 7u);
}

TEST(FUSequencing, CanReachTwoFUs) {
  // Figure 3(d) needs FU requirements down to 2; iterate the transform.
  DependenceDAG D = buildDAG(figure2Trace());
  for (unsigned Round = 0; Round != 8; ++Round) {
    if (requirementOf(D, fuRes()) <= 2)
      break;
    std::vector<ExcessiveChainSet> Sets = excessiveSets(D, fuRes(), 2);
    ASSERT_FALSE(Sets.empty());
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    TransformContext Ctx{D, A, HF};
    std::vector<TransformProposal> Props =
        proposeFUSequencing(Ctx, Sets.front());
    ASSERT_FALSE(Props.empty());
    D = applyBest(D, Props, fuRes());
  }
  EXPECT_EQ(requirementOf(D, fuRes()), 2u);
}

TEST(RegSequencing, Figure3bReducesFiveToFour) {
  DependenceDAG D = buildDAG(figure2Trace());
  ASSERT_EQ(requirementOf(D, regRes()), 5u);

  std::vector<ExcessiveChainSet> Sets = excessiveSets(D, regRes(), 4);
  ASSERT_FALSE(Sets.empty());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  TransformContext Ctx{D, A, HF};
  std::vector<TransformProposal> Props =
      proposeRegSequencing(Ctx, Sets.front());
  ASSERT_FALSE(Props.empty());

  DependenceDAG After = applyBest(D, Props, regRes());
  EXPECT_LE(requirementOf(After, regRes()), 4u) << "paper Figure 3(b)";
}

TEST(Spilling, Figure3cReducesRegistersToThree) {
  // The paper spills D's value and reaches 3 registers. Iterate spill
  // proposals (each round picks the best) until the requirement is 3.
  DependenceDAG D = buildDAG(figure2Trace());
  unsigned Before = requirementOf(D, regRes());
  ASSERT_EQ(Before, 5u);
  for (unsigned Round = 0; Round != 6; ++Round) {
    if (requirementOf(D, regRes()) <= 3)
      break;
    std::vector<ExcessiveChainSet> Sets = excessiveSets(D, regRes(), 3);
    ASSERT_FALSE(Sets.empty());
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    TransformContext Ctx{D, A, HF};
    std::vector<TransformProposal> Props = proposeSpills(Ctx, Sets.front());
    ASSERT_FALSE(Props.empty());
    D = applyBest(D, Props, regRes());
  }
  EXPECT_LE(requirementOf(D, regRes()), 3u) << "paper Figure 3(c)";
  // Spill code must be structurally sound (def-before-use holds in trace
  // order only for the original instructions; check the relaxed form).
  EXPECT_TRUE(verifyTrace(D.trace(), /*RequireDefBeforeUse=*/false).empty());
}

TEST(Spilling, StoreSharesDefsChainReloadMayNot) {
  // Paper Section 5 / C8: a spill store can always execute concurrently
  // with what the spilled def ran with, so FU requirements do not grow
  // because of the store... the reload may add demand. We check the
  // weaker, directly measurable form: FU requirement grows by at most
  // the reload's contribution (i.e. at most 1 per spill).
  DependenceDAG D = buildDAG(figure2Trace());
  unsigned FUBefore = requirementOf(D, fuRes());
  std::vector<ExcessiveChainSet> Sets = excessiveSets(D, regRes(), 3);
  ASSERT_FALSE(Sets.empty());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  TransformContext Ctx{D, A, HF};
  std::vector<TransformProposal> Props = proposeSpills(Ctx, Sets.front());
  ASSERT_FALSE(Props.empty());
  DependenceDAG After = D;
  applyTransform(After, Props.front());
  EXPECT_LE(requirementOf(After, fuRes()), FUBefore + 1);
}

TEST(Sequencing, NeverIncreasesTrueRequirements) {
  // Paper Section 5: "Neither transformation can increase the
  // requirements of either resource." That is a statement about the true
  // worst case (sequence edges only remove schedules); the *greedy-kill
  // measurement* of registers may wobble, so compare exact quantities:
  // FU width (exact by construction) and brute-force max liveness.
  GenOptions Opts;
  Opts.NumInstrs = 12;
  Opts.NumInputs = 3;
  Opts.NumOutputs = 1;
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed != 40 && Checked < 12; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    if (T.size() > 20)
      continue;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A0(D);
    unsigned FU = requirementOf(D, fuRes());
    unsigned TrueReg = bruteForceMaxLive(D, A0);
    if (FU < 3)
      continue;
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    TransformContext Ctx{D, A, HF};
    for (ResourceId Res : {fuRes(), regRes()}) {
      Measurement M = measureResource(D, A, HF, Res);
      if (M.MaxRequired < 2)
        continue;
      for (const ExcessiveChainSet &E :
           findExcessiveSets(M, A, HF, M.MaxRequired - 1)) {
        std::vector<TransformProposal> Props =
            Res.Kind == ResourceId::FU ? proposeFUSequencing(Ctx, E)
                                       : proposeRegSequencing(Ctx, E);
        for (const TransformProposal &P : Props) {
          DependenceDAG Scratch = D;
          applyTransform(Scratch, P);
          DAGAnalysis A2(Scratch);
          EXPECT_LE(requirementOf(Scratch, fuRes()), FU) << "seed " << Seed;
          EXPECT_LE(bruteForceMaxLive(Scratch, A2), TrueReg)
              << "seed " << Seed;
          ++Checked;
        }
        break; // first excessive set per resource is enough
      }
    }
  }
  EXPECT_GE(Checked, 4u);
}

TEST(Spilling, PreservesSemantics) {
  // Spill-transformed traces must compute the same memory state when run
  // sequentially (the reload feeds exactly the delayed uses).
  GenOptions Opts;
  Opts.NumInstrs = 20;
  Opts.Window = 8;
  RNG InputRng(5);
  unsigned Spilled = 0;
  for (uint64_t Seed = 1; Seed != 25; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    ExecResult Want = interpret(T, randomInputs(T, InputRng));
    DependenceDAG D = buildDAG(T);
    unsigned Reg = requirementOf(D, regRes());
    if (Reg < 3)
      continue;
    std::vector<ExcessiveChainSet> Sets = excessiveSets(D, regRes(), Reg - 1);
    if (Sets.empty())
      continue;
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    TransformContext Ctx{D, A, HF};
    std::vector<TransformProposal> Props = proposeSpills(Ctx, Sets.front());
    if (Props.empty())
      continue;
    DependenceDAG After = D;
    applyTransform(After, Props.front());
    ++Spilled;
    // A sequential run of the transformed trace must match... but the
    // transformed trace's order may no longer be topological (reload is
    // appended). Execute via a topological ordering instead.
    DAGAnalysis A2(After);
    // Rebuild a trace in topological order; vreg/symbol tables must match
    // so we copy the whole trace and only permute instructions.
    Trace Permuted = After.trace();
    std::vector<Instruction> NewOrder;
    for (unsigned N : A2.topoOrder())
      if (!DependenceDAG::isVirtual(N))
        NewOrder.push_back(After.trace().instr(DependenceDAG::instrOf(N)));
    Permuted.replaceInstructions(NewOrder);
    RNG InputRng2(5);
    // Regenerate the same inputs (same RNG seed and symbol set).
    ExecResult Got = interpret(Permuted, randomInputs(T, InputRng2));
    RNG InputRng3(5);
    Want = interpret(T, randomInputs(T, InputRng3));
    EXPECT_TRUE(Got == Want) << "seed " << Seed;
  }
  EXPECT_GE(Spilled, 5u);
}

TEST(Proposals, SequenceEdgesAreAlwaysAcyclicAndNew) {
  GenOptions Opts;
  Opts.NumInstrs = 30;
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    Opts.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    TransformContext Ctx{D, A, HF};
    for (ResourceId Res : {fuRes(), regRes()}) {
      Measurement M = measureResource(D, A, HF, Res);
      if (M.MaxRequired < 3)
        continue;
      for (const ExcessiveChainSet &E :
           findExcessiveSets(M, A, HF, M.MaxRequired - 1)) {
        std::vector<TransformProposal> Props;
        if (Res.Kind == ResourceId::FU) {
          Props = proposeFUSequencing(Ctx, E);
        } else {
          Props = proposeRegSequencing(Ctx, E);
          auto Sp = proposeSpills(Ctx, E);
          Props.insert(Props.end(), Sp.begin(), Sp.end());
        }
        for (const TransformProposal &P : Props) {
          DependenceDAG Scratch = D;
          applyTransform(Scratch, P);
          // DAGAnalysis asserts acyclicity internally.
          DAGAnalysis Check(Scratch);
          EXPECT_EQ(Check.topoOrder().size(), Scratch.size());
        }
        break;
      }
    }
  }
}
