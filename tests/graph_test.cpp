//===- tests/graph_test.cpp - DAG construction and analyses ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"
#include "graph/DAG.h"
#include "graph/DAGBuilder.h"
#include "graph/Dominators.h"
#include "graph/Hammocks.h"
#include "ir/Parser.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

unsigned node(unsigned InstrIdx) { return DependenceDAG::nodeOf(InstrIdx); }

} // namespace

TEST(DAGBuilder, FlowDependences) {
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = neg a\n"
                            "c = neg a\n"
                            "d = add b, c\n");
  DependenceDAG D = buildDAG(T);
  EXPECT_EQ(D.size(), 6u);
  EXPECT_TRUE(D.hasEdge(node(0), node(1)));
  EXPECT_TRUE(D.hasEdge(node(0), node(2)));
  EXPECT_TRUE(D.hasEdge(node(1), node(3)));
  EXPECT_TRUE(D.hasEdge(node(2), node(3)));
  EXPECT_FALSE(D.hasEdge(node(1), node(2)));
}

TEST(DAGBuilder, VirtualRootAndLeaf) {
  Trace T = parseTraceOrDie("a = load x\nb = neg a\n");
  DependenceDAG D = buildDAG(T);
  EXPECT_TRUE(D.hasEdge(DependenceDAG::EntryNode, node(0)));
  EXPECT_TRUE(D.hasEdge(node(1), DependenceDAG::ExitNode));
  // Entry feeds only pred-less nodes; b has a real pred.
  EXPECT_FALSE(D.hasEdge(DependenceDAG::EntryNode, node(1)));
  EXPECT_FALSE(D.hasEdge(node(0), DependenceDAG::ExitNode));
}

TEST(DAGBuilder, MemoryDependences) {
  Trace T = parseTraceOrDie("a = load x\n"  // 0
                            "b = neg a\n"   // 1
                            "store x, b\n"  // 2: anti 0->2
                            "c = load x\n"  // 3: flow 2->3
                            "store x, c\n"  // 4: output 2->4, anti 3->4
                            "d = load y\n"); // 5: unrelated variable
  DependenceDAG D = buildDAG(T);
  EXPECT_TRUE(D.hasEdge(node(0), node(2))); // anti
  EXPECT_TRUE(D.hasEdge(node(2), node(3))); // flow
  EXPECT_TRUE(D.hasEdge(node(2), node(4))); // output
  EXPECT_TRUE(D.hasEdge(node(3), node(4))); // anti
  EXPECT_FALSE(D.hasEdge(node(2), node(5)));
  EXPECT_FALSE(D.hasEdge(node(4), node(5)));
}

TEST(DAGBuilder, BranchFencesStoresBothWays) {
  Trace T = parseTraceOrDie("a = load x\n" // 0
                            "store y, a\n" // 1
                            "br a\n"       // 2: store 1 fences into branch
                            "store z, a\n" // 3: branch fences store 3
                            "br a\n");     // 4: branches stay ordered
  DependenceDAG D = buildDAG(T);
  EXPECT_TRUE(D.hasEdge(node(1), node(2)));
  EXPECT_TRUE(D.hasEdge(node(2), node(3)));
  EXPECT_TRUE(D.hasEdge(node(2), node(4)));
  EXPECT_TRUE(D.hasEdge(node(3), node(4)));
  // Loads float freely across branches.
  EXPECT_FALSE(D.hasEdge(node(2), node(0)));
}

TEST(DAGBuilder, LoadsMayFloatAcrossBranches) {
  Trace T = parseTraceOrDie("a = load x\n"
                            "br a\n"
                            "b = load y\n"
                            "c = add a, b\n");
  DependenceDAG D = buildDAG(T);
  EXPECT_FALSE(D.hasEdge(node(1), node(2)));
}

TEST(DAG, AddAndRemoveEdges) {
  Trace T = parseTraceOrDie("a = load x\nb = load y\n");
  DependenceDAG D = buildDAG(T);
  EXPECT_TRUE(D.addEdge(node(0), node(1), EdgeKind::Sequence));
  EXPECT_FALSE(D.addEdge(node(0), node(1), EdgeKind::Data)); // duplicate
  EXPECT_TRUE(D.hasEdge(node(0), node(1)));
  EXPECT_TRUE(D.removeEdge(node(0), node(1)));
  EXPECT_FALSE(D.hasEdge(node(0), node(1)));
  EXPECT_FALSE(D.removeEdge(node(0), node(1)));
}

TEST(DAG, NormalizeAfterSequenceEdges) {
  Trace T = parseTraceOrDie("a = load x\nb = load y\n");
  DependenceDAG D = buildDAG(T);
  // Both were leaves/roots; sequencing a before b changes that.
  D.addEdge(node(0), node(1), EdgeKind::Sequence);
  D.normalizeVirtualEdges();
  EXPECT_FALSE(D.hasEdge(DependenceDAG::EntryNode, node(1)));
  EXPECT_FALSE(D.hasEdge(node(0), DependenceDAG::ExitNode));
  EXPECT_TRUE(D.hasEdge(DependenceDAG::EntryNode, node(0)));
  EXPECT_TRUE(D.hasEdge(node(1), DependenceDAG::ExitNode));
}

TEST(Analysis, ReachabilityAndIndependence) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  // A reaches everything; G and H are independent; B and E are ordered.
  unsigned NA = node(0), NB = node(1), NE = node(4), NG = node(6),
           NH = node(7), NK = node(10);
  EXPECT_TRUE(A.reaches(NA, NK));
  EXPECT_TRUE(A.reaches(NB, NE));
  EXPECT_FALSE(A.reaches(NE, NB));
  EXPECT_TRUE(A.independent(NG, NH));
  EXPECT_FALSE(A.independent(NA, NK));
}

TEST(Analysis, TopoOrderRespectsEdges) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  for (unsigned U = 0; U != D.size(); ++U)
    for (const auto &[V, K] : D.succs(U)) {
      (void)K;
      EXPECT_LT(A.topoPos(U), A.topoPos(V));
    }
}

TEST(Analysis, DepthsAndHeights) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  // Critical path: entry->A->B->E->I->K->exit = 6 edges.
  EXPECT_EQ(A.criticalPathLength(), 6u);
  EXPECT_EQ(A.depth(DependenceDAG::EntryNode), 0u);
  EXPECT_EQ(A.height(DependenceDAG::ExitNode), 0u);
  EXPECT_EQ(A.depth(node(0)), 1u);  // A
  EXPECT_EQ(A.height(node(10)), 1u); // K
  for (unsigned U = 0; U != D.size(); ++U)
    EXPECT_LE(A.depth(U) + A.height(U), A.criticalPathLength());
}

TEST(Analysis, EdgeKeepsAcyclic) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  EXPECT_TRUE(A.edgeKeepsAcyclic(node(6), node(7)));  // G -> H fine
  EXPECT_FALSE(A.edgeKeepsAcyclic(node(10), node(0))); // K -> A cycles
  EXPECT_FALSE(A.edgeKeepsAcyclic(node(3), node(3)));
}

TEST(Analysis, ComputeUses) {
  DependenceDAG D = buildDAG(figure2Trace());
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  EXPECT_EQ(Uses[node(0)].size(), 3u); // v used by B, C, D
  EXPECT_EQ(Uses[node(10)].size(), 0u); // z unused
  // w used by E and F.
  std::vector<unsigned> WUses = Uses[node(1)];
  EXPECT_EQ(WUses.size(), 2u);
}

TEST(Analysis, TransitiveReduction) {
  BitMatrix Closure(4);
  // 0 < 1 < 2, plus the transitive pair (0,2); 3 isolated.
  Closure.set(0, 1);
  Closure.set(1, 2);
  Closure.set(0, 2);
  BitMatrix Red = transitiveReduction(Closure);
  EXPECT_TRUE(Red.test(0, 1));
  EXPECT_TRUE(Red.test(1, 2));
  EXPECT_FALSE(Red.test(0, 2));
}

TEST(Dominators, LineAndDiamond) {
  Trace T = parseTraceOrDie("a = load x\n"  // 0
                            "b = neg a\n"   // 1: diamond left
                            "c = not a\n"   // 2: diamond right
                            "d = add b, c\n"); // 3: join
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  DominatorTree Dom(D, A, false);
  DominatorTree PDom(D, A, true);
  EXPECT_EQ(Dom.idom(node(1)), node(0));
  EXPECT_EQ(Dom.idom(node(2)), node(0));
  EXPECT_EQ(Dom.idom(node(3)), node(0)); // join dominated by fork
  EXPECT_EQ(PDom.idom(node(1)), node(3));
  EXPECT_EQ(PDom.idom(node(0)), node(3));
  EXPECT_TRUE(Dom.dominates(node(0), node(3)));
  EXPECT_TRUE(Dom.dominates(node(0), node(0)));
  EXPECT_FALSE(Dom.dominates(node(1), node(3)));
  EXPECT_TRUE(PDom.dominates(node(3), node(1)));
}

TEST(Hammocks, WholeDAGIsHammockZero) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ASSERT_GE(HF.size(), 1u);
  EXPECT_EQ(HF.hammock(0).EntryN, DependenceDAG::EntryNode);
  EXPECT_EQ(HF.hammock(0).ExitN, DependenceDAG::ExitNode);
  EXPECT_EQ(HF.hammock(0).Members.count(), D.size());
  EXPECT_EQ(HF.hammock(0).Level, 0u);
}

TEST(Hammocks, NestedRegionsDetected) {
  // Two diamonds in sequence: u1 .. v1 -> u2 .. v2.
  Trace T = parseTraceOrDie("a = load x\n"   // 0: entry of diamond 1
                            "b = neg a\n"    // 1
                            "c = not a\n"    // 2
                            "d = add b, c\n" // 3: exit of diamond 1
                            "e = neg d\n"    // 4
                            "f = not d\n"    // 5
                            "g = add e, f\n"); // 6
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  // Expect hammocks (a,d) and (d,g) beneath the root.
  bool FoundFirst = false, FoundSecond = false;
  for (unsigned I = 0; I != HF.size(); ++I) {
    const Hammock &H = HF.hammock(I);
    if (H.EntryN == node(0) && H.ExitN == node(3))
      FoundFirst = true;
    if (H.EntryN == node(3) && H.ExitN == node(6))
      FoundSecond = true;
  }
  EXPECT_TRUE(FoundFirst);
  EXPECT_TRUE(FoundSecond);
  // Inner nodes sit at a deeper level than the virtual boundary.
  EXPECT_GT(HF.level(node(1)), HF.level(DependenceDAG::EntryNode));
}

TEST(Hammocks, EdgePriorityPrefersSameRegion) {
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = neg a\n"
                            "c = not a\n"
                            "d = add b, c\n"
                            "e = neg d\n"
                            "f = not d\n"
                            "g = add e, f\n");
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  // b and c share a diamond; b and f do not.
  EXPECT_EQ(HF.edgePriority(node(1), node(2)), 0u);
  EXPECT_GT(HF.edgePriority(node(1), node(5)), 0u);
}
