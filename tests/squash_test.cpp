//===- tests/squash_test.cpp - Trace side-exit squash semantics -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vliw/Simulator.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

VLIWOp ldi(int Dest, int64_t V) {
  Instruction I(Opcode::LoadImm);
  I.setDest(Dest);
  I.setIntImm(V);
  return {I, 0};
}

VLIWOp store(int Sym, int Src) {
  Instruction I(Opcode::Store);
  I.setSymbol(Sym);
  I.setOperand(0, Src);
  return {I, 0};
}

VLIWOp branch(int Cond, int64_t Ordinal) {
  Instruction I(Opcode::Br);
  I.setOperand(0, Cond);
  I.setIntImm(Ordinal);
  return {I, 0};
}

} // namespace

TEST(Squash, TakenBranchDropsLaterWords) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  VLIWProgram P(M, {"before", "after"}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 1)); // condition: taken
  W0.Ops.push_back(ldi(1, 7));
  P.newWord().Ops.push_back(store(0, 1));
  P.newWord().Ops.push_back(branch(0, 0));
  P.newWord().Ops.push_back(store(1, 1)); // must be squashed

  SimResult R = simulate(P, {}, /*StopAtTakenBranch=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TakenBranch, 0);
  EXPECT_EQ(R.Exec.Memory["before"].I, 7);
  EXPECT_EQ(R.Exec.Memory.count("after"), 0u);
  EXPECT_EQ(R.Cycles, 3u) << "squashed words cost nothing";
}

TEST(Squash, UntakenBranchRunsToCompletion) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  VLIWProgram P(M, {"after"}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 0)); // condition: not taken
  W0.Ops.push_back(ldi(1, 9));
  P.newWord().Ops.push_back(branch(0, 0));
  P.newWord().Ops.push_back(store(0, 1));
  SimResult R = simulate(P, {}, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TakenBranch, -1);
  EXPECT_EQ(R.Exec.Memory["after"].I, 9);
}

TEST(Squash, StoreInTheBranchWordCommits) {
  // The branch resolves at the end of its cycle: same-word stores are
  // on-trace and must land.
  MachineModel M = MachineModel::homogeneous(3, 4);
  VLIWProgram P(M, {"v"}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 1));
  W0.Ops.push_back(ldi(1, 5));
  VLIWWord &W1 = P.newWord();
  W1.Ops.push_back(store(0, 1));
  W1.Ops.push_back(branch(0, 0));
  SimResult R = simulate(P, {}, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TakenBranch, 0);
  EXPECT_EQ(R.Exec.Memory["v"].I, 5);
}

TEST(Squash, BranchLogIsPrefixUpToExit) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  VLIWProgram P(M, {}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 0));
  W0.Ops.push_back(ldi(1, 1));
  P.newWord().Ops.push_back(branch(0, 0)); // not taken
  P.newWord().Ops.push_back(branch(1, 1)); // taken -> exit
  P.newWord().Ops.push_back(branch(0, 2)); // squashed
  SimResult R = simulate(P, {}, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TakenBranch, 1);
  ASSERT_EQ(R.Exec.BranchLog.size(), 2u);
  EXPECT_EQ(R.Exec.BranchLog[0], 0);
  EXPECT_EQ(R.Exec.BranchLog[1], 1);
}

TEST(Squash, DisabledModeIgnoresTakenBranches) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  VLIWProgram P(M, {"after"}, 0);
  VLIWWord &W0 = P.newWord();
  W0.Ops.push_back(ldi(0, 1));
  W0.Ops.push_back(ldi(1, 3));
  P.newWord().Ops.push_back(branch(0, 0));
  P.newWord().Ops.push_back(store(0, 1));
  SimResult R = simulate(P, {}, /*StopAtTakenBranch=*/false);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TakenBranch, -1) << "straight-line mode never exits early";
  EXPECT_EQ(R.Exec.Memory["after"].I, 3);
}
