//===- tests/threads_test.cpp - ThreadPool and parallel driver loop -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The driver's hot loop evaluates each round's proposals on a small
// worker pool (support/ThreadPool.h) and reuses measurements between
// identical DAG states. Both are only acceptable if they change nothing
// observable: these tests pin the pool's contract (coverage, inline
// serial path, exception propagation) and prove the driver's results are
// bit-identical across thread counts, with and without the measurement
// cache, and under fault injection.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "support/ThreadPool.h"
#include "ursa/Driver.h"
#include "ursa/FaultInjector.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

using namespace ursa;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  constexpr size_t Count = 10000;
  std::vector<std::atomic<unsigned>> Hits(Count);
  Pool.parallelFor(Count, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Count; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, SerialPoolStaysOnCallingThread) {
  // ThreadPool(1) must spawn nothing and run inline — that is what makes
  // Threads=1 reproduce pre-pool behavior exactly.
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  bool AllInline = true;
  Pool.parallelFor(64, [&](size_t) {
    if (std::this_thread::get_id() != Caller)
      AllInline = false;
  });
  EXPECT_TRUE(AllInline);
}

TEST(ThreadPool, FirstExceptionPropagatesAndBatchDrains) {
  ThreadPool Pool(4);
  std::atomic<size_t> Ran{0};
  auto Run = [&]() {
    Pool.parallelFor(200, [&](size_t I) {
      Ran.fetch_add(1, std::memory_order_relaxed);
      if (I == 42)
        throw std::runtime_error("task 42 failed");
    });
  };
  EXPECT_THROW(Run(), std::runtime_error);
  // The contract drains the whole batch before rethrowing (results must
  // stay deterministic for the reduction).
  EXPECT_EQ(Ran.load(), 200u);
  // The pool stays usable after an exception.
  std::atomic<size_t> After{0};
  Pool.parallelFor(50, [&](size_t) { After.fetch_add(1); });
  EXPECT_EQ(After.load(), 50u);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool Pool(3);
  for (unsigned Batch = 0; Batch != 20; ++Batch) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(Batch * 7 + 1,
                     [&](size_t I) { Sum.fetch_add(I + 1); });
    uint64_t N = Batch * 7 + 1;
    EXPECT_EQ(Sum.load(), N * (N + 1) / 2);
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, DefaultThreadsReadsEnvironment) {
  const char *Old = std::getenv("URSA_THREADS");
  std::string Saved = Old ? Old : "";

  unsetenv("URSA_THREADS");
  EXPECT_EQ(ThreadPool::defaultThreads(), 1u) << "serial by default";
  setenv("URSA_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
  setenv("URSA_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::defaultThreads(), 1u) << "non-positive falls back";
  setenv("URSA_THREADS", "junk", 1);
  EXPECT_EQ(ThreadPool::defaultThreads(), 1u) << "garbage falls back";

  if (Old)
    setenv("URSA_THREADS", Saved.c_str(), 1);
  else
    unsetenv("URSA_THREADS");
}

//===----------------------------------------------------------------------===//
// Driver determinism across thread counts and cache modes
//===----------------------------------------------------------------------===//

namespace {

/// RoundRecord equality minus wall-clock (DurationMs legitimately
/// varies between runs).
void expectSameRound(const RoundRecord &A, const RoundRecord &B,
                     const char *What) {
  EXPECT_EQ(A.Round, B.Round) << What;
  EXPECT_EQ(A.Kind, B.Kind) << What;
  EXPECT_EQ(A.Resource, B.Resource) << What;
  EXPECT_EQ(A.Detail, B.Detail) << What;
  EXPECT_EQ(A.ExcessBefore, B.ExcessBefore) << What;
  EXPECT_EQ(A.ExcessAfter, B.ExcessAfter) << What;
  EXPECT_EQ(A.CritPath, B.CritPath) << What;
  EXPECT_EQ(A.EdgesAdded, B.EdgesAdded) << What;
  EXPECT_EQ(A.SpillsInserted, B.SpillsInserted) << What;
  EXPECT_EQ(A.ProposalsTried, B.ProposalsTried) << What;
}

void expectSameResult(const URSAResult &A, const URSAResult &B,
                      const char *What) {
  EXPECT_EQ(A.Rounds, B.Rounds) << What;
  EXPECT_EQ(A.SeqEdgesAdded, B.SeqEdgesAdded) << What;
  EXPECT_EQ(A.SpillsInserted, B.SpillsInserted) << What;
  EXPECT_EQ(A.WithinLimits, B.WithinLimits) << What;
  EXPECT_EQ(A.FinalRequired, B.FinalRequired) << What;
  EXPECT_EQ(A.CritPathBefore, B.CritPathBefore) << What;
  EXPECT_EQ(A.CritPathAfter, B.CritPathAfter) << What;
  EXPECT_EQ(A.StopReasons, B.StopReasons) << What;
  EXPECT_EQ(A.FallbackUsed, B.FallbackUsed) << What;
  ASSERT_EQ(A.RoundLog.size(), B.RoundLog.size()) << What;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I)
    expectSameRound(A.RoundLog[I], B.RoundLog[I], What);
}

uint64_t statValue(const char *Name) {
  for (const obs::StatValue &S : obs::snapshotStats())
    if (S.Name == Name)
      return S.Value;
  return 0;
}

} // namespace

TEST(DriverThreads, IdenticalResultsAcrossThreadsAndCacheModes) {
  // The acceptance bar for the whole hot-loop change: Threads=1 vs
  // Threads=4, cache on vs off — every combination must produce the
  // same RoundLog and FinalRequired as the pre-change serial driver
  // (Threads=1, MeasurementReuse=false).
  MachineModel M = MachineModel::homogeneous(2, 4);
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  for (uint64_t Seed = 1; Seed != 7; ++Seed) {
    G.Seed = Seed;
    DependenceDAG D = buildDAG(generateTrace(G));

    URSAOptions Base;
    Base.Threads = 1;
    Base.MeasurementReuse = false;
    URSAResult Ref = runURSA(D, M, Base);

    struct Config {
      unsigned Threads;
      bool Reuse;
      const char *Name;
    };
    for (Config C : {Config{1, true, "t1+cache"}, Config{4, false, "t4"},
                     Config{4, true, "t4+cache"}}) {
      URSAOptions O;
      O.Threads = C.Threads;
      O.MeasurementReuse = C.Reuse;
      URSAResult R = runURSA(D, M, O);
      expectSameResult(R, Ref, C.Name);
    }
  }
}

TEST(DriverThreads, MeasurementCacheActuallyHits) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 3;
  DependenceDAG D = buildDAG(generateTrace(G));

  uint64_t Hits0 = statValue("ursa.driver.measure_cache.hits");
  URSAOptions Off;
  Off.MeasurementReuse = false;
  URSAResult R1 = runURSA(D, M, Off);
  EXPECT_GT(R1.Rounds, 0u) << "workload must exercise the round loop";
  EXPECT_EQ(statValue("ursa.driver.measure_cache.hits"), Hits0)
      << "disabled cache must not count hits";

  URSAOptions On;
  On.MeasurementReuse = true;
  runURSA(D, M, On);
  // At minimum the winning proposal's state is reused as the next
  // round's start state, and the sweep-end check reuses the last one.
  EXPECT_GT(statValue("ursa.driver.measure_cache.hits"), Hits0);
}

TEST(DriverThreads, ParallelEvalBatchesCounted) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  GenOptions G;
  G.NumInstrs = 45;
  G.Window = 14;
  G.Seed = 3;
  DependenceDAG D = buildDAG(generateTrace(G));

  uint64_t B0 = statValue("ursa.driver.parallel_eval_batches");
  URSAOptions Serial;
  Serial.Threads = 1;
  runURSA(D, M, Serial);
  EXPECT_EQ(statValue("ursa.driver.parallel_eval_batches"), B0)
      << "serial runs must never touch the pool";

  URSAOptions Par;
  Par.Threads = 4;
  URSAResult R = runURSA(D, M, Par);
  if (R.Rounds > 0) {
    EXPECT_GT(statValue("ursa.driver.parallel_eval_batches"), B0);
  }
}

TEST(DriverThreads, FaultInjectionUnaffectedByThreadCount) {
  // The injector hooks run in the serial section of the round, keyed on
  // the round number, so an armed driver must degrade identically no
  // matter how many workers evaluate proposals.
  MachineModel M = MachineModel::homogeneous(2, 3);
  auto RunWith = [&](unsigned Threads) {
    FaultInjector FI(FaultKind::FalseProgress, 7, 0);
    URSAOptions O;
    O.Verify = VerifyLevel::Basic;
    O.Faults = &FI;
    O.Threads = Threads;
    URSAResult R = runURSA(buildDAG(figure2Trace()), M, O);
    EXPECT_TRUE(FI.fired());
    return R;
  };
  URSAResult Serial = RunWith(1);
  URSAResult Threaded = RunWith(4);
  EXPECT_TRUE(Serial.LivelockDetected);
  EXPECT_TRUE(Threaded.LivelockDetected);
  EXPECT_FALSE(Threaded.VerifyFailed);
  expectSameResult(Threaded, Serial, "false-progress");
}
