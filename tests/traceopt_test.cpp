//===- tests/traceopt_test.cpp - Intra-trace optimization -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/TraceOpt.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Forwarding, LoadAfterStoreUsesRegister) {
  Trace T = parseTraceOrDie("a = ldi 7\n"
                            "store x, a\n"
                            "b = load x\n"
                            "c = add b, b\n"
                            "store y, c\n");
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.LoadsForwarded, 1u);
  EXPECT_EQ(S.StoresEliminated, 0u);
  EXPECT_EQ(T.size(), 4u); // load removed
  EXPECT_EQ(interpret(T).Memory["y"].I, 14);
}

TEST(Forwarding, ChainsAcrossMultipleLoads) {
  Trace T = parseTraceOrDie("a = ldi 3\n"
                            "store x, a\n"
                            "b = load x\n"
                            "c = neg b\n"
                            "store x, c\n"
                            "d = load x\n"
                            "store y, d\n");
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.LoadsForwarded, 2u);
  EXPECT_EQ(interpret(T).Memory["y"].I, -3);
}

TEST(Forwarding, SurvivesBranches) {
  // The store before the branch still commits, so forwarding past the
  // branch is safe for the on-trace path.
  Trace T = parseTraceOrDie("a = ldi 5\n"
                            "store x, a\n"
                            "br a\n"
                            "b = load x\n"
                            "store y, b\n");
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.LoadsForwarded, 1u);
  ExecResult R = interpret(T);
  EXPECT_EQ(R.Memory["x"].I, 5) << "the store must remain";
  EXPECT_EQ(R.Memory["y"].I, 5);
}

TEST(DeadStore, OverwrittenWithoutBranchIsRemoved) {
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "b = ldi 2\n"
                            "store x, a\n"
                            "store x, b\n");
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.StoresEliminated, 1u);
  EXPECT_EQ(T.size(), 3u);
  EXPECT_EQ(interpret(T).Memory["x"].I, 2);
}

TEST(DeadStore, BranchPinsTheFirstStore) {
  // A side exit between the stores observes the first one.
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "b = ldi 2\n"
                            "store x, a\n"
                            "br a\n"
                            "store x, b\n");
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.StoresEliminated, 0u);
  EXPECT_EQ(T.size(), 5u);
}

TEST(Forwarding, DomainMismatchPinsStoreAndKeepsLoad) {
  Trace T("t");
  int A = T.emitLoadImm(4);
  T.emitStore("x", A);
  int F = T.emitLoad("x", Domain::Float); // reinterpreting float load
  int G = T.emitOp(Opcode::FNeg, F);
  T.emitStore("y", G);
  int B = T.emitLoadImm(9);
  T.emitStore("x", B);
  TraceOptStats S = forwardAndEliminate(T);
  EXPECT_EQ(S.LoadsForwarded, 0u);
  EXPECT_EQ(S.StoresEliminated, 0u)
      << "the float load observed the first store";
}

TEST(Forwarding, PreservesRandomProgramSemantics) {
  GenOptions Opts;
  Opts.NumInstrs = 40;
  Opts.MemOpProb = 0.25;
  Opts.BranchProb = 0.1;
  RNG InputRng(3);
  for (uint64_t Seed = 1; Seed != 25; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    MemoryState In = randomInputs(T, InputRng);
    ExecResult Want = interpret(T, In);
    forwardAndEliminate(T);
    EXPECT_TRUE(verifyTrace(T).empty()) << "seed " << Seed;
    EXPECT_TRUE(interpret(T, In) == Want) << "seed " << Seed;
  }
}

TEST(ValueNumbering, DeduplicatesConstantsAndPureOps) {
  Trace T = parseTraceOrDie("a = ldi 7\n"
                            "b = ldi 7\n"
                            "c = add a, b\n"
                            "d = add a, b\n"
                            "e = mul c, d\n"
                            "store out, e\n");
  unsigned Removed = valueNumberTrace(T);
  // b duplicates a; after that rewrite, d duplicates c.
  EXPECT_EQ(Removed, 2u);
  EXPECT_EQ(T.size(), 4u);
  EXPECT_EQ(interpret(T).Memory["out"].I, 14 * 14);
}

TEST(ValueNumbering, DoesNotTouchMemoryOps) {
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = load x\n" // looks identical, but memory
                            "c = add a, b\n"
                            "store x, c\n"
                            "d = load x\n"
                            "store y, d\n");
  unsigned Removed = valueNumberTrace(T);
  EXPECT_EQ(Removed, 0u);
}

TEST(ValueNumbering, DistinguishesDifferentImmediates) {
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "b = ldi 2\n"
                            "c = add a, b\n"
                            "store out, c\n");
  EXPECT_EQ(valueNumberTrace(T), 0u);
}

TEST(ValueNumbering, FloatImmediatesCompareByBits) {
  Trace T("t");
  int A = T.emitFLoadImm(0.5);
  int B = T.emitFLoadImm(0.5);
  int C = T.emitFLoadImm(-0.5);
  int S = T.emitOp(Opcode::FAdd, A, B);
  int S2 = T.emitOp(Opcode::FAdd, S, C);
  T.emitStore("out", T.emitOp(Opcode::CvtFI, S2));
  EXPECT_EQ(valueNumberTrace(T), 1u); // only the duplicate 0.5
}

TEST(ValueNumbering, PreservesRandomProgramSemantics) {
  GenOptions Opts;
  Opts.NumInstrs = 40;
  Opts.FloatFraction = 0.3;
  RNG InputRng(17);
  for (uint64_t Seed = 100; Seed != 120; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    MemoryState In = randomInputs(T, InputRng);
    ExecResult Want = interpret(T, In);
    valueNumberTrace(T);
    EXPECT_TRUE(verifyTrace(T).empty()) << "seed " << Seed;
    EXPECT_TRUE(interpret(T, In) == Want) << "seed " << Seed;
  }
}

TEST(ValueNumbering, ComposesWithForwarding) {
  // The pair of passes in trace-formation order.
  Trace T = parseTraceOrDie("a = ldi 2\n"
                            "store x, a\n"
                            "b = load x\n"
                            "k1 = ldi 2\n"
                            "c = mul b, k1\n"
                            "store x, c\n"
                            "d = load x\n"
                            "k2 = ldi 2\n"
                            "e = mul d, k2\n"
                            "store out, e\n");
  forwardAndEliminate(T);
  valueNumberTrace(T);
  EXPECT_TRUE(verifyTrace(T).empty());
  EXPECT_EQ(interpret(T).Memory["out"].I, 8);
  EXPECT_LT(T.size(), 10u);
}
