//===- tests/support_test.cpp - support/ unit tests -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bitset.h"
#include "support/RNG.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace ursa;

TEST(Bitset, SetTestReset) {
  Bitset B(130);
  EXPECT_EQ(B.size(), 130u);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 3u);
  B.reset(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 2u);
}

TEST(Bitset, SetAllRespectsSize) {
  Bitset B(70);
  B.setAll();
  EXPECT_EQ(B.count(), 70u);
}

TEST(Bitset, UnionIntersectDifference) {
  Bitset A(100), B(100);
  A.set(3);
  A.set(50);
  B.set(50);
  B.set(99);

  Bitset U = A;
  U |= B;
  EXPECT_EQ(U.count(), 3u);

  Bitset I = A;
  I &= B;
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(50));

  Bitset D = A;
  D.subtract(B);
  EXPECT_EQ(D.count(), 1u);
  EXPECT_TRUE(D.test(3));

  EXPECT_TRUE(A.anyCommon(B));
  Bitset C(100);
  C.set(7);
  EXPECT_FALSE(A.anyCommon(C));
}

TEST(Bitset, ForEachVisitsAscending) {
  Bitset B(200);
  std::vector<unsigned> Want = {5, 63, 64, 127, 199};
  for (unsigned I : Want)
    B.set(I);
  std::vector<unsigned> Got;
  B.forEach([&](unsigned I) { Got.push_back(I); });
  EXPECT_EQ(Got, Want);
}

TEST(BitMatrix, RowsAndUnion) {
  BitMatrix M(10);
  M.set(1, 2);
  M.set(2, 3);
  EXPECT_TRUE(M.test(1, 2));
  EXPECT_FALSE(M.test(1, 3));
  M.unionRows(1, 2);
  EXPECT_TRUE(M.test(1, 3));
}

TEST(RNG, DeterministicAcrossInstances) {
  RNG A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BelowStaysInRange) {
  RNG R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 3000; ++I) {
    uint64_t V = R.below(17);
    ASSERT_LT(V, 17u);
    Seen.insert(V);
  }
  // All 17 residues should appear in 3000 draws.
  EXPECT_EQ(Seen.size(), 17u);
}

TEST(RNG, RangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNG, UnitInHalfOpenInterval) {
  RNG R(11);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    ASSERT_GE(U, 0.0);
    ASSERT_LT(U, 1.0);
  }
}

TEST(Table, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("| name   | value |"), std::string::npos);
  EXPECT_NE(S.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(uint64_t(42)), "42");
  EXPECT_EQ(Table::fmt(int64_t(-7)), "-7");
}
