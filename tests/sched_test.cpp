//===- tests/sched_test.cpp - Scheduler, assignment, pipelines ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"
#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "sched/GraphColoring.h"
#include "sched/ListScheduler.h"
#include "sched/Pipelines.h"
#include "sched/RegAssign.h"
#include "ursa/PipelineVerifier.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// Checks that a schedule obeys dependences (successor issues only after
/// predecessor completion) and FU capacity.
void checkScheduleValid(const DependenceDAG &D, const Schedule &S,
                        const MachineModel &M) {
  for (unsigned N = 2; N != D.size(); ++N) {
    ASSERT_GE(S.CycleOf[N], 0) << "unscheduled node";
    for (const auto &[Succ, Kind] : D.succs(N)) {
      if (DependenceDAG::isVirtual(Succ))
        continue;
      // Data needs the result (latency); sequence needs ordering only
      // (the unit's occupancy).
      unsigned Wait = Kind == EdgeKind::Data
                          ? M.latency(D.instrAt(N).fuKind())
                          : M.occupancy(D.instrAt(N).fuKind());
      EXPECT_GE(S.CycleOf[Succ], S.CycleOf[N] + int(Wait))
          << "dependence violated";
    }
  }
  // Per-cycle capacity, accounting for multi-cycle occupancy.
  for (unsigned C = 0; C != S.Cycles.size(); ++C) {
    unsigned PerClass[4] = {0, 0, 0, 0};
    for (unsigned N = 2; N != D.size(); ++N) {
      unsigned Lat = M.latency(D.instrAt(N).fuKind());
      if (S.CycleOf[N] >= 0 && unsigned(S.CycleOf[N]) <= C &&
          C < unsigned(S.CycleOf[N]) + Lat) {
        unsigned Class =
            M.isHomogeneous() ? 0u : unsigned(D.instrAt(N).fuKind());
        ++PerClass[Class];
      }
    }
    if (M.isHomogeneous()) {
      EXPECT_LE(PerClass[0], M.numFUs(FUKind::Universal));
    } else {
      EXPECT_LE(PerClass[unsigned(FUKind::IntALU)], M.numFUs(FUKind::IntALU));
      EXPECT_LE(PerClass[unsigned(FUKind::FloatALU)],
                M.numFUs(FUKind::FloatALU));
      EXPECT_LE(PerClass[unsigned(FUKind::Memory)], M.numFUs(FUKind::Memory));
    }
  }
}

} // namespace

TEST(ListScheduler, RespectsDependencesAndCapacity) {
  MachineModel M = MachineModel::homogeneous(2, 64);
  for (auto &[Name, T] : kernelSuite()) {
    (void)Name;
    DependenceDAG D = buildDAG(T);
    Schedule S = listSchedule(D, M);
    checkScheduleValid(D, S, M);
  }
}

TEST(ListScheduler, WidthOneIsSequential) {
  MachineModel M = MachineModel::homogeneous(1, 64);
  DependenceDAG D = buildDAG(figure2Trace());
  Schedule S = listSchedule(D, M);
  EXPECT_EQ(S.Length, 11u) << "one FU executes one op per cycle";
}

TEST(ListScheduler, AmpleFUsReachCriticalPath) {
  MachineModel M = MachineModel::homogeneous(16, 64);
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  Schedule S = listSchedule(D, M);
  // Unit latency: length equals the number of instruction levels, which
  // is criticalPathLength() - 1 (edges include entry and exit hops).
  EXPECT_EQ(S.Length, A.criticalPathLength() - 1);
}

TEST(ListScheduler, NonPipelinedLatencyOccupiesUnit) {
  MachineModel M = MachineModel::homogeneous(1, 64).withLatencies(3, 3, 3);
  Trace T = parseTraceOrDie("a = load x\nb = neg a\n");
  DependenceDAG D = buildDAG(T);
  Schedule S = listSchedule(D, M);
  EXPECT_EQ(S.CycleOf[DependenceDAG::nodeOf(0)], 0);
  EXPECT_EQ(S.CycleOf[DependenceDAG::nodeOf(1)], 3) << "waits for completion";
  checkScheduleValid(D, S, M);
}

TEST(ListScheduler, ClassedMachineSeparatesPools) {
  MachineModel M = MachineModel::classed(1, 1, 1, 32, 32);
  DependenceDAG D = buildDAG(mixedClassTrace(2));
  Schedule S = listSchedule(D, M);
  checkScheduleValid(D, S, M);
}

TEST(RegAssign, SucceedsWithAmpleRegisters) {
  MachineModel M = MachineModel::homogeneous(4, 32);
  DependenceDAG D = buildDAG(figure2Trace());
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  ASSERT_TRUE(RA.Ok);
  EXPECT_LE(RA.PeakLive, 6u);
  // Values with overlapping lifetimes get different registers.
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  const Trace &T = D.trace();
  for (unsigned I = 0; I != T.size(); ++I) {
    for (unsigned J = I + 1; J != T.size(); ++J) {
      int VI = T.instr(I).dest(), VJ = T.instr(J).dest();
      if (VI < 0 || VJ < 0)
        continue;
      // Overlap test on the schedule.
      auto Range = [&](unsigned Idx, int V) {
        (void)V;
        unsigned N = DependenceDAG::nodeOf(Idx);
        int Lo = S.CycleOf[N], Hi = Lo;
        for (unsigned U : Uses[N])
          Hi = std::max(Hi, S.CycleOf[U]);
        return std::pair<int, int>(Lo, Hi);
      };
      auto [L1, H1] = Range(I, VI);
      auto [L2, H2] = Range(J, VJ);
      if (L1 < H2 && L2 < H1) // strict interior overlap
        EXPECT_NE(RA.PhysOf[VI], RA.PhysOf[VJ]);
    }
  }
}

TEST(RegAssign, ReportsConflictWhenStarved) {
  MachineModel M = MachineModel::homogeneous(4, 2);
  DependenceDAG D = buildDAG(figure2Trace());
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  EXPECT_FALSE(RA.Ok);
  EXPECT_GE(RA.ConflictVReg, 0);
}

TEST(RegAssign, DeadDefStillOccupiesItsIssueCycle) {
  // Regression: a value that is never used has End == Start, but its
  // register is still written in the issue cycle. The expiry scan must
  // not hand that register to another value defined in the same cycle,
  // or the VLIW word ends up with two writes to one register. Surfaced
  // by the seed-11 add chain on 2fu/3reg (tests/corpus/).
  MachineModel M = MachineModel::homogeneous(2, 2);
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = neg a\n" // dead: no uses
                            "c = neg a\n"
                            "store o, c\n");
  DependenceDAG D = buildDAG(T);
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  ASSERT_TRUE(RA.Ok);
  Status St = verifyAssignment(D, S, RA, M);
  EXPECT_TRUE(St.isOk()) << St.str();
  int B = T.instr(1).dest(), C = T.instr(2).dest();
  if (S.CycleOf[DependenceDAG::nodeOf(1)] ==
      S.CycleOf[DependenceDAG::nodeOf(2)]) {
    EXPECT_NE(RA.PhysOf[B], RA.PhysOf[C])
        << "same-cycle defs share a physical register";
  }
}

TEST(RegAssign, SpillValueInTraceRewrites) {
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = neg a\n"
                            "c = not a\n"
                            "d = add b, c\n"
                            "store y, d\n");
  unsigned Added = spillValueInTrace(T, 0); // spill 'a'
  EXPECT_EQ(Added, 3u); // one store, two reloads
  EXPECT_TRUE(verifyTrace(T).empty());
  // Semantics preserved.
  MemoryState In;
  In["x"] = Value::ofInt(5);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["y"].I, -5 + ~5);
}

TEST(RegAssign, VictimPreferenceSkipsReloads) {
  Trace T = parseTraceOrDie("a = load x\nb = neg a\nstore y, b\n");
  spillValueInTrace(T, 0);
  DependenceDAG D = buildDAG(T);
  Schedule S = sequentialSchedule(D);
  // Conflict on the reload's value: the victim must not be the reload.
  const Trace &T2 = D.trace();
  int ReloadVReg = -1;
  for (const Instruction &I : T2.instructions())
    if (I.opcode() == Opcode::SpillLoad)
      ReloadVReg = I.dest();
  ASSERT_GE(ReloadVReg, 0);
  int Victim = pickSpillVictim(D, S, ReloadVReg);
  EXPECT_NE(Victim, ReloadVReg);
}

TEST(Postpass, SequentialScheduleIsTraceOrder) {
  DependenceDAG D = buildDAG(figure2Trace());
  Schedule S = sequentialSchedule(D);
  EXPECT_EQ(S.Length, 11u);
  for (unsigned I = 0; I != 11; ++I)
    EXPECT_EQ(S.CycleOf[DependenceDAG::nodeOf(I)], int(I));
}

TEST(Postpass, ReuseEdgesSerializeRegisterSharing) {
  // Figure 2's sequential live ranges peak at exactly 5, so a 5-register
  // file forces register sharing and therefore reuse edges.
  MachineModel M = MachineModel::homogeneous(4, 5);
  DependenceDAG D = buildDAG(figure2Trace());
  Schedule Seq = sequentialSchedule(D);
  RegAssignment RA = assignRegisters(D, Seq, M);
  ASSERT_TRUE(RA.Ok);
  unsigned Before = D.numEdges();
  unsigned Added = addReuseEdges(D, RA);
  EXPECT_GT(Added, 0u);
  EXPECT_EQ(D.numEdges(), Before + Added);
  DAGAnalysis A(D); // still acyclic
  EXPECT_EQ(A.topoOrder().size(), D.size());
}

TEST(Pipelines, AllSucceedOnKernels) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (auto &[Name, T] : kernelSuite()) {
    for (auto *Compile :
         {&compilePrepass, &compilePostpass, &compileIntegrated}) {
      CompileResult R = (*Compile)(T, M);
      ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
      EXPECT_TRUE(R.Prog.has_value());
      EXPECT_TRUE(R.Prog->validate().empty());
      EXPECT_GT(R.Cycles, 0u);
    }
  }
}

TEST(Pipelines, StarvedRegistersForceSpills) {
  MachineModel M = MachineModel::homogeneous(4, 3);
  CompileResult R = compilePrepass(dotProductTrace(8), M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SpillOps, 0u);
  EXPECT_GT(R.AssignSpillRounds, 0u);
}

TEST(Pipelines, PostpassAddsDependencesPrepassDoesNot) {
  // The paper's core observation: allocation first introduces register
  // reuse dependences that shackle the scheduler.
  MachineModel M = MachineModel::homogeneous(4, 4);
  Trace T = dotProductTrace(8);
  CompileResult Pre = compilePrepass(T, M);
  CompileResult Post = compilePostpass(T, M);
  ASSERT_TRUE(Pre.Ok && Post.Ok);
  EXPECT_GT(Post.SeqEdgesAdded, 0u);
  EXPECT_GE(Post.Cycles, Pre.Cycles > 2 ? Pre.Cycles - 2 : 1u)
      << "sanity: postpass should not magically win big";
}

TEST(Pipelines, IntegratedTracksPressure) {
  MachineModel M = MachineModel::homogeneous(4, 5);
  Trace T = dotProductTrace(12);
  CompileResult Pre = compilePrepass(T, M);
  CompileResult Int = compileIntegrated(T, M);
  ASSERT_TRUE(Pre.Ok && Int.Ok);
  // The pressure-aware scheduler should not need more spills than the
  // oblivious one.
  EXPECT_LE(Int.SpillOps, Pre.SpillOps + 2);
}
