//===- tests/order_test.cpp - Matching and chain decomposition ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "order/Chains.h"
#include "order/Matching.h"
#include "support/RNG.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ursa;

namespace {

/// Random strict order on N elements: random DAG + closure.
BitMatrix randomOrder(unsigned N, RNG &Rng, double EdgeProb) {
  BitMatrix Rel(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      if (Rng.chance(EdgeProb))
        Rel.set(I, J);
  // Transitive closure (indices already topologically ordered).
  for (unsigned I = N; I-- > 0;)
    Rel.row(I).forEach([&](unsigned J) { Rel.unionRows(I, J); });
  return Rel;
}

std::vector<unsigned> allOf(unsigned N) {
  std::vector<unsigned> V(N);
  for (unsigned I = 0; I != N; ++I)
    V[I] = I;
  return V;
}

/// Checks decomposition invariants: partition, chain-wise comparability.
void checkDecomposition(const ChainDecomposition &D, const BitMatrix &Rel,
                        const std::vector<unsigned> &Active) {
  unsigned Covered = 0;
  for (unsigned C = 0; C != D.Chains.size(); ++C) {
    const auto &Chain = D.Chains[C];
    ASSERT_FALSE(Chain.empty());
    Covered += Chain.size();
    for (unsigned I = 0; I + 1 < Chain.size(); ++I)
      EXPECT_TRUE(Rel.test(Chain[I], Chain[I + 1]))
          << "consecutive chain members must be related";
    for (unsigned N : Chain)
      EXPECT_EQ(D.ChainOf[N], int(C));
  }
  EXPECT_EQ(Covered, Active.size());
}

} // namespace

TEST(Matching, SimpleAugmenting) {
  // Left {0,1} both only like right 5; one matches.
  IncrementalMatcher M(6);
  M.addBatchAndAugment({{0, 5}, {1, 5}});
  EXPECT_EQ(M.result().Size, 1u);
  // New edge frees the conflict.
  M.addBatchAndAugment({{1, 4}});
  EXPECT_EQ(M.result().Size, 2u);
}

TEST(Matching, AugmentingPathReassignment) {
  // 0-:-A, 1-:-{A,B}: maximum matching must reroute 0 or 1.
  IncrementalMatcher M(4);
  M.addBatchAndAugment({{0, 2}, {1, 2}, {1, 3}});
  EXPECT_EQ(M.result().Size, 2u);
}

TEST(Matching, HopcroftKarpAgreesWithKuhn) {
  RNG Rng(123);
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    unsigned N = 4 + Rng.below(20);
    std::vector<std::vector<unsigned>> Adj(N);
    std::vector<std::pair<unsigned, unsigned>> Edges;
    for (unsigned L = 0; L != N; ++L)
      for (unsigned R = 0; R != N; ++R)
        if (Rng.chance(0.15)) {
          Adj[L].push_back(R);
          Edges.emplace_back(L, R);
        }
    IncrementalMatcher K(N);
    K.addBatchAndAugment(Edges);
    MatchingResult H = hopcroftKarp(N, Adj);
    EXPECT_EQ(K.result().Size, H.Size);
  }
}

TEST(Chains, Figure2MinimalDecompositionHasFourChains) {
  // Paper Section 3: the example DAG decomposes into 4 chains.
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  BitMatrix Rel(D.size());
  std::vector<unsigned> Active;
  for (unsigned N = 2; N != D.size(); ++N) {
    Active.push_back(N);
    Rel.row(N) = A.descendants(N);
    Rel.row(N).reset(DependenceDAG::ExitNode);
  }
  ChainDecomposition CD = decomposeChains(Rel, Active);
  EXPECT_EQ(CD.width(), 4u);
  checkDecomposition(CD, Rel, Active);
}

TEST(Chains, WidthMatchesBruteForce) {
  RNG Rng(77);
  for (unsigned Trial = 0; Trial != 60; ++Trial) {
    unsigned N = 3 + Rng.below(12);
    BitMatrix Rel = randomOrder(N, Rng, 0.25);
    std::vector<unsigned> Active = allOf(N);
    ChainDecomposition CD = decomposeChains(Rel, Active);
    checkDecomposition(CD, Rel, Active);
    EXPECT_EQ(CD.width(), bruteForceWidth(Rel, Active))
        << "Dilworth width must equal brute-force max antichain";
  }
}

TEST(Chains, RestrictedActiveSubset) {
  RNG Rng(99);
  for (unsigned Trial = 0; Trial != 30; ++Trial) {
    unsigned N = 6 + Rng.below(10);
    BitMatrix Rel = randomOrder(N, Rng, 0.3);
    std::vector<unsigned> Active;
    for (unsigned I = 0; I != N; ++I)
      if (Rng.chance(0.6))
        Active.push_back(I);
    if (Active.empty())
      continue;
    ChainDecomposition CD = decomposeChains(Rel, Active);
    checkDecomposition(CD, Rel, Active);
    EXPECT_EQ(CD.width(), bruteForceWidth(Rel, Active));
  }
}

TEST(Chains, MaxAntichainIsIndependentAndTight) {
  RNG Rng(31);
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    unsigned N = 3 + Rng.below(14);
    BitMatrix Rel = randomOrder(N, Rng, 0.2);
    std::vector<unsigned> Active = allOf(N);
    std::vector<unsigned> AC = maxAntichain(Rel, Active);
    for (unsigned I = 0; I != AC.size(); ++I)
      for (unsigned J = I + 1; J != AC.size(); ++J) {
        EXPECT_FALSE(Rel.test(AC[I], AC[J]));
        EXPECT_FALSE(Rel.test(AC[J], AC[I]));
      }
    EXPECT_EQ(AC.size(), decomposeChains(Rel, Active).width());
  }
}

TEST(Chains, PrioritizedMatchingStaysMinimal) {
  // Hammock priorities may never cost global minimality (Theorem 1 bound
  // still achieved).
  for (auto &[Name, T] : kernelSuite()) {
    (void)Name;
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    BitMatrix Rel(D.size());
    std::vector<unsigned> Active;
    for (unsigned N = 2; N != D.size(); ++N) {
      Active.push_back(N);
      Rel.row(N) = A.descendants(N);
      Rel.row(N).reset(DependenceDAG::ExitNode);
    }
    ChainDecomposition Plain = decomposeChains(Rel, Active);
    ChainDecomposition Prio = decomposeChainsPrioritized(Rel, Active, HF);
    EXPECT_EQ(Plain.width(), Prio.width()) << Name;
    checkDecomposition(Prio, Rel, Active);
  }
}

TEST(Chains, PrioritizedKeepsHammockProjectionsMinimal) {
  // The point of the paper's modified matching: inside each hammock, the
  // projected chain count equals the hammock's own width.
  for (auto &[Name, T] : kernelSuite()) {
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    BitMatrix Rel(D.size());
    std::vector<unsigned> Active;
    for (unsigned N = 2; N != D.size(); ++N) {
      Active.push_back(N);
      Rel.row(N) = A.descendants(N);
      Rel.row(N).reset(DependenceDAG::ExitNode);
    }
    ChainDecomposition Prio = decomposeChainsPrioritized(Rel, Active, HF);
    for (unsigned HI = 0; HI != HF.size(); ++HI) {
      const Hammock &H = HF.hammock(HI);
      std::vector<unsigned> Inside;
      for (unsigned N : Active)
        if (H.Members.test(N))
          Inside.push_back(N);
      if (Inside.size() < 2)
        continue;
      // Chains intersecting the hammock.
      std::vector<int> Seen(Prio.Chains.size(), 0);
      unsigned Count = 0;
      for (unsigned N : Inside)
        if (!Seen[Prio.ChainOf[N]]) {
          Seen[Prio.ChainOf[N]] = 1;
          ++Count;
        }
      unsigned Local = Inside.size() <= 24
                           ? bruteForceWidth(Rel, Inside)
                           : decomposeChains(Rel, Inside).width();
      EXPECT_EQ(Count, Local)
          << Name << ": hammock " << HI << " projection not minimal";
    }
  }
}
