//===- tests/faultinject_test.cpp - Fault matrix through the driver -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the full pipeline with an armed FaultInjector and proves the
// guardrails hold: every fault class is either caught (diagnostics, no
// crash, no silent miscompile) or healed (the fixpoint loop re-does the
// undone work), budgets terminate livelocked runs, and the guaranteed-fit
// fallback always produces a fitting, semantically correct program.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "ursa/Compiler.h"
#include "ursa/Driver.h"
#include "ursa/FaultInjector.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// Paper figure 2 on the paper's tight machine: guaranteed to need
/// several transformation rounds, which gives the injector a window.
const MachineModel TightM = MachineModel::homogeneous(2, 3);

URSAOptions verifiedOpts(FaultInjector *FI) {
  URSAOptions Opts;
  Opts.Verify = VerifyLevel::Basic;
  Opts.Faults = FI;
  return Opts;
}

bool hasError(const std::vector<Diag> &Diags, const std::string &Needle) {
  for (const Diag &D : Diags)
    if (D.Sev == Severity::Error &&
        D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(FaultMatrix, CycleInjectionCaughtByDriver) {
  FaultInjector FI(FaultKind::CycleEdge, /*Seed=*/7, /*FireAtRound=*/1);
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, verifiedOpts(&FI));
  ASSERT_TRUE(FI.fired()) << "no round ever ran, fault never armed";
  EXPECT_TRUE(R.VerifyFailed);
  EXPECT_TRUE(hasError(R.Diags, "cycle")) << "diags: " << R.Diags.size();
  EXPECT_TRUE(R.FinalRequired.empty()) << "corrupt DAG must not be measured";
}

TEST(FaultMatrix, DanglingEdgeInjectionCaughtByDriver) {
  FaultInjector FI(FaultKind::DanglingEdge, 7, 1);
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, verifiedOpts(&FI));
  ASSERT_TRUE(FI.fired());
  EXPECT_TRUE(R.VerifyFailed);
  EXPECT_TRUE(hasError(R.Diags, "dangling"));
}

TEST(FaultMatrix, FalseProgressDetectedAsLivelock) {
  FaultInjector FI(FaultKind::FalseProgress, 7, 0);
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, verifiedOpts(&FI));
  ASSERT_TRUE(FI.fired());
  EXPECT_TRUE(R.LivelockDetected);
  EXPECT_FALSE(R.VerifyFailed) << "the DAG itself is sound";
  EXPECT_TRUE(hasError(R.Diags, "reported progress"));
  EXPECT_EQ(R.Rounds, 1u) << "the lying transform must not loop";
}

TEST(FaultMatrix, DroppedSequenceEdgeIsHealedByTheFixpoint) {
  // Un-doing allocation work behind the driver's back leaves a *valid*
  // DAG, so the verifier stays quiet — but the sweep loop re-measures and
  // re-does the work, and the result still fits and still runs right.
  FaultInjector FI(FaultKind::DropSeqEdge, 7, 1);
  URSAOptions Opts = verifiedOpts(&FI);
  Opts.Verify = VerifyLevel::Full;
  URSACompileResult R = compileURSA(figure2Trace(), TightM, Opts);
  EXPECT_FALSE(R.VerifyFailed);
  ASSERT_TRUE(R.Compile.Ok) << R.Compile.Error;
}

TEST(FaultMatrix, CompileURSAReturnsDiagnosticsInsteadOfCrashing) {
  FaultInjector FI(FaultKind::CycleEdge, 13, 1);
  URSACompileResult R =
      compileURSA(figure2Trace(), TightM, verifiedOpts(&FI));
  EXPECT_TRUE(R.VerifyFailed);
  EXPECT_FALSE(R.Compile.Ok);
  EXPECT_FALSE(R.Compile.Error.empty());
  EXPECT_FALSE(R.Diags.empty());
  EXPECT_FALSE(R.Compile.Prog.has_value());
}

TEST(FaultMatrix, FrontGateRejectsMalformedTrace) {
  Trace T = figure2Trace();
  // Break single assignment: re-point one definition at an earlier one.
  int FirstDef = -1;
  for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
    if (T.instr(Idx).dest() < 0)
      continue;
    if (FirstDef < 0) {
      FirstDef = T.instr(Idx).dest();
    } else {
      T.instr(Idx).setDest(FirstDef);
      FirstDef = -2;
      break;
    }
  }
  ASSERT_EQ(FirstDef, -2) << "trace has fewer than two definitions?";
  URSAOptions Opts;
  Opts.Verify = VerifyLevel::Basic;
  URSACompileResult R = compileURSA(T, TightM, Opts);
  EXPECT_TRUE(R.VerifyFailed);
  EXPECT_FALSE(R.Compile.Ok);
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags.front().Phase, "input");
}

//===----------------------------------------------------------------------===//
// Budgets, livelock, fallback
//===----------------------------------------------------------------------===//

TEST(Guardrails, RoundBudgetTerminatesAndReportsHonestly) {
  URSAOptions Opts;
  Opts.MaxTotalRounds = 1;
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, Opts);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.Rounds, 1u);
  EXPECT_FALSE(R.WithinLimits) << "one round cannot fit figure 2 on 2x3";
  ASSERT_EQ(R.FinalRequired.size(), 2u)
      << "accounting must survive a budget bail-out";
  bool Warned = false;
  for (const Diag &D : R.Diags)
    Warned |= D.Sev == Severity::Warning &&
              D.Message.find("budget") != std::string::npos;
  EXPECT_TRUE(Warned);
}

TEST(Guardrails, DefaultBudgetNeverFiresOnHonestRuns) {
  // Honest runs never exhaust the default budget or fail verification.
  // A plateaued run on a tight machine MAY report livelock (that is the
  // graceful hand-off of the residual to the assignment phase), but only
  // ever as a warning — errors are reserved for broken invariants.
  MachineModel M = MachineModel::homogeneous(2, 4);
  for (auto &[Name, T] : kernelSuite()) {
    URSAResult R = runURSA(buildDAG(T), M);
    EXPECT_FALSE(R.BudgetExhausted) << Name;
    EXPECT_FALSE(R.VerifyFailed) << Name;
    for (const Diag &D : R.Diags)
      EXPECT_NE(D.Sev, Severity::Error) << Name << ": " << D.str();
  }
}

TEST(Guardrails, GuaranteedFitForcesEveryRequirementWithinLimits) {
  // Exhaust the budget immediately so the reduction phases contribute
  // nothing — the fallback alone must make figure 2 fit the 2x3 machine.
  URSAOptions Opts;
  Opts.MaxTotalRounds = 0;
  Opts.GuaranteedFit = true;
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, Opts);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_TRUE(R.FallbackUsed);
  EXPECT_TRUE(R.WithinLimits);
  ASSERT_EQ(R.FinalRequired.size(), 2u);
  EXPECT_LE(R.FinalRequired[0], 2u);
  EXPECT_LE(R.FinalRequired[1], 3u);
}

TEST(Guardrails, FallbackOutputStillComputesTheRightAnswer) {
  URSAOptions Opts;
  Opts.MaxTotalRounds = 0;
  Opts.GuaranteedFit = true;
  Opts.Verify = VerifyLevel::Full; // includes semantic equivalence
  MachineModel M = MachineModel::homogeneous(2, 4);
  for (auto &[Name, T] : kernelSuite()) {
    URSACompileResult R = compileURSA(T, M, Opts);
    ASSERT_TRUE(R.Compile.Ok) << Name << ": " << R.Compile.Error;
    EXPECT_TRUE(R.FallbackUsed || R.AllocWithinLimits) << Name;
  }
}

TEST(Guardrails, TimeBudgetZeroMeansUnlimited) {
  URSAOptions Opts;
  Opts.TimeBudgetMs = 0;
  URSAResult R = runURSA(buildDAG(figure2Trace()), TightM, Opts);
  EXPECT_FALSE(R.BudgetExhausted);
  EXPECT_TRUE(R.WithinLimits);
}

//===----------------------------------------------------------------------===//
// Checked entry point
//===----------------------------------------------------------------------===//

TEST(CheckedCompile, GoodTraceRoundTrips) {
  StatusOr<URSACompileResult> R =
      compileURSAChecked(figure2Trace(), MachineModel::homogeneous(4, 8));
  ASSERT_TRUE(R.isOk()) << R.status().str();
  EXPECT_TRUE(R->Compile.Ok);
  EXPECT_TRUE(R->Compile.Prog.has_value());
}

TEST(CheckedCompile, StructurallyImpossibleMachineYieldsStatus) {
  // One register cannot hold two distinct operands of a single add.
  StatusOr<URSACompileResult> R =
      compileURSAChecked(figure2Trace(), MachineModel::homogeneous(1, 1));
  ASSERT_FALSE(R.isOk());
  EXPECT_FALSE(R.status().message().empty());
}

TEST(CheckedCompile, FaultyPipelineYieldsStatusWithDiags) {
  FaultInjector FI(FaultKind::CycleEdge, 5, 1);
  URSAOptions Opts;
  Opts.Faults = &FI;
  StatusOr<URSACompileResult> R =
      compileURSAChecked(figure2Trace(), TightM, Opts);
  ASSERT_FALSE(R.isOk());
  EXPECT_FALSE(R.status().diags().empty());
}
