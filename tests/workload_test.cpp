//===- tests/workload_test.cpp - Generators and kernel corpus -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"
#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(Generators, DeterministicInSeed) {
  GenOptions Opts;
  Opts.NumInstrs = 40;
  Opts.Seed = 1234;
  Trace A = generateTrace(Opts);
  Trace B = generateTrace(Opts);
  EXPECT_EQ(A.str(), B.str());
  Opts.Seed = 1235;
  EXPECT_NE(generateTrace(Opts).str(), A.str());
}

TEST(Generators, AllShapesVerify) {
  for (GenOptions::ShapeKind S :
       {GenOptions::ShapeKind::Layered, GenOptions::ShapeKind::Expression,
        GenOptions::ShapeKind::Chains}) {
    GenOptions Opts;
    Opts.Shape = S;
    Opts.NumInstrs = 50;
    for (uint64_t Seed = 1; Seed != 6; ++Seed) {
      Opts.Seed = Seed;
      Trace T = generateTrace(Opts);
      EXPECT_TRUE(verifyTrace(T).empty());
      EXPECT_GT(T.size(), 5u);
    }
  }
}

TEST(Generators, NoDeadValues) {
  // Crucial invariant for the liveness ground truth (DESIGN.md Sec. 5).
  GenOptions Opts;
  Opts.NumInstrs = 30;
  Opts.MemOpProb = 0.1;
  Opts.BranchProb = 0.1;
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    Opts.Seed = Seed;
    Trace T = generateTrace(Opts);
    DependenceDAG D = buildDAG(T);
    std::vector<std::vector<unsigned>> Uses = computeUses(D);
    for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
      if (T.instr(Idx).dest() < 0)
        continue;
      EXPECT_FALSE(Uses[DependenceDAG::nodeOf(Idx)].empty())
          << "seed " << Seed << " instr " << Idx << " defines a dead value";
    }
  }
}

TEST(Generators, FloatFractionProducesFloatOps) {
  GenOptions Opts;
  Opts.NumInstrs = 60;
  Opts.FloatFraction = 0.5;
  Opts.Seed = 9;
  Trace T = generateTrace(Opts);
  unsigned FloatOps = 0;
  for (const Instruction &I : T.instructions())
    if (I.info().FU == FUKind::FloatALU)
      ++FloatOps;
  EXPECT_GT(FloatOps, 5u);
}

TEST(Generators, BranchProbProducesBranches) {
  GenOptions Opts;
  Opts.NumInstrs = 60;
  Opts.BranchProb = 0.4;
  Opts.Seed = 3;
  Trace T = generateTrace(Opts);
  unsigned Branches = 0;
  for (const Instruction &I : T.instructions())
    Branches += isBranch(I.opcode());
  EXPECT_GT(Branches, 5u);
}

TEST(Generators, WindowControlsParallelism) {
  // A wider operand window should yield a wider DAG on average.
  auto WidthAt = [](unsigned Window) {
    GenOptions Opts;
    Opts.NumInstrs = 60;
    Opts.Window = Window;
    double Sum = 0;
    for (uint64_t Seed = 1; Seed != 8; ++Seed) {
      Opts.Seed = Seed;
      DependenceDAG D = buildDAG(generateTrace(Opts));
      DAGAnalysis A(D);
      double CP = A.criticalPathLength();
      Sum += double(D.size()) / CP; // avg nodes per level ~ width proxy
    }
    return Sum;
  };
  EXPECT_GT(WidthAt(16), WidthAt(2));
}

TEST(Generators, RandomInputsCoverSymbols) {
  GenOptions Opts;
  Opts.NumInstrs = 30;
  Opts.Seed = 5;
  Trace T = generateTrace(Opts);
  RNG Rng(1);
  MemoryState In = randomInputs(T, Rng);
  for (const std::string &Name : T.symbolNames())
    EXPECT_TRUE(In.count(Name)) << Name;
}

TEST(Kernels, SuiteVerifiesAndExecutes) {
  for (auto &[Name, T] : kernelSuite()) {
    EXPECT_TRUE(verifyTrace(T).empty()) << Name;
    RNG Rng(2);
    ExecResult R = interpret(T, randomInputs(T, Rng));
    (void)R;
  }
}

TEST(Kernels, Figure2ShapeMatchesPaper) {
  Trace T = figure2Trace();
  ASSERT_EQ(T.size(), 11u);
  // A is the only load; K is the only unused value.
  EXPECT_EQ(T.instr(0).opcode(), Opcode::Load);
  DependenceDAG D = buildDAG(T);
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  for (unsigned Idx = 0; Idx != 10; ++Idx)
    EXPECT_FALSE(Uses[DependenceDAG::nodeOf(Idx)].empty());
  EXPECT_TRUE(Uses[DependenceDAG::nodeOf(10)].empty());
}

TEST(Kernels, DotProductComputesDotProduct) {
  Trace T = dotProductTrace(4);
  MemoryState In;
  for (unsigned I = 0; I != 4; ++I) {
    In["a" + std::to_string(I)] = Value::ofInt(I + 1);
    In["b" + std::to_string(I)] = Value::ofInt(10);
  }
  In["sum"] = Value::ofInt(5);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["sum"].I, 5 + 10 * (1 + 2 + 3 + 4));
}

TEST(Kernels, HornerAndEstrinAgree) {
  for (unsigned Degree : {4u, 8u}) {
    MemoryState In;
    In["x"] = Value::ofInt(3);
    for (unsigned I = 0; I <= Degree; ++I)
      In["c" + std::to_string(I)] = Value::ofInt(int64_t(I) - 2);
    ExecResult H = interpret(hornerTrace(Degree), In);
    ExecResult E = interpret(estrinTrace(Degree), In);
    EXPECT_EQ(H.Memory["p"].I, E.Memory["p"].I) << "degree " << Degree;
  }
}

TEST(Kernels, StencilComputesWeightedSum) {
  Trace T = stencilTrace(2);
  MemoryState In;
  for (unsigned I = 0; I != 4; ++I)
    In["x" + std::to_string(I)] = Value::ofInt(I);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["y0"].I, 0 + 2 * 1 + 2);
  EXPECT_EQ(R.Memory["y1"].I, 1 + 2 * 2 + 3);
}

TEST(Kernels, Matmul2MultipliesMatrices) {
  Trace T = matmul2Trace(1);
  MemoryState In;
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50].
  int64_t A[4] = {1, 2, 3, 4}, B[4] = {5, 6, 7, 8};
  for (unsigned I = 0; I != 4; ++I) {
    In["a0" + std::to_string(I)] = Value::ofInt(A[I]);
    In["b0" + std::to_string(I)] = Value::ofInt(B[I]);
  }
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["c00"].I, 19);
  EXPECT_EQ(R.Memory["c01"].I, 22);
  EXPECT_EQ(R.Memory["c02"].I, 43);
  EXPECT_EQ(R.Memory["c03"].I, 50);
}

TEST(Kernels, ButterflyMatchesComplexMath) {
  Trace T = butterflyTrace(1);
  MemoryState In;
  In["wr"] = Value::ofFloat(0.0);
  In["wi"] = Value::ofFloat(1.0); // w = i
  In["ar0"] = Value::ofFloat(1.0);
  In["ai0"] = Value::ofFloat(0.0); // a = 1
  In["br0"] = Value::ofFloat(2.0);
  In["bi0"] = Value::ofFloat(0.0); // b = 2
  ExecResult R = interpret(T, In);
  // t = w*b = 2i; a+t = 1+2i; a-t = 1-2i.
  EXPECT_DOUBLE_EQ(R.Memory["cr0"].F, 1.0);
  EXPECT_DOUBLE_EQ(R.Memory["ci0"].F, 2.0);
  EXPECT_DOUBLE_EQ(R.Memory["dr0"].F, 1.0);
  EXPECT_DOUBLE_EQ(R.Memory["di0"].F, -2.0);
}

TEST(Kernels, HydroMatchesFormula) {
  Trace T = hydroTrace(1);
  MemoryState In;
  In["q"] = Value::ofInt(1);
  In["r"] = Value::ofInt(2);
  In["t"] = Value::ofInt(3);
  In["z10"] = Value::ofInt(4);
  In["z11"] = Value::ofInt(5);
  In["y0"] = Value::ofInt(6);
  ExecResult R = interpret(T, In);
  EXPECT_EQ(R.Memory["x0"].I, 1 + 6 * (2 * 4 + 3 * 5));
}
