//===- tests/pipelined_test.cpp - Pipelined-FU extension (Section 6) ------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "sched/ListScheduler.h"
#include "sched/Pipelines.h"
#include "ursa/Compiler.h"
#include "vliw/Simulator.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(MachineModel, OccupancyFollowsPipelining) {
  MachineModel NonPiped = MachineModel::homogeneous(2, 8).withLatencies(4, 4, 4);
  EXPECT_EQ(NonPiped.occupancy(FUKind::IntALU), 4u);
  MachineModel Piped =
      MachineModel::homogeneous(2, 8).withLatencies(4, 4, 4).withPipelinedFUs();
  EXPECT_EQ(Piped.occupancy(FUKind::IntALU), 1u);
  EXPECT_EQ(Piped.latency(FUKind::IntALU), 4u) << "latency is unchanged";
}

TEST(ListScheduler, PipelinedUnitAcceptsBackToBackIndependentOps) {
  // One FU, latency 3: two independent ops need 4 cycles non-pipelined
  // (occupancy) but can issue in consecutive cycles when pipelined.
  Trace T = parseTraceOrDie("a = load x\nb = load y\n");
  DependenceDAG D = buildDAG(T);

  MachineModel NonPiped = MachineModel::homogeneous(1, 8).withLatencies(3, 3, 3);
  Schedule S1 = listSchedule(D, NonPiped);
  EXPECT_EQ(S1.CycleOf[DependenceDAG::nodeOf(1)], 3);

  MachineModel Piped =
      MachineModel::homogeneous(1, 8).withLatencies(3, 3, 3).withPipelinedFUs();
  Schedule S2 = listSchedule(D, Piped);
  EXPECT_EQ(S2.CycleOf[DependenceDAG::nodeOf(1)], 1)
      << "pipelined unit accepts a new op every cycle";
}

TEST(ListScheduler, PipelinedStillWaitsForResults) {
  Trace T = parseTraceOrDie("a = load x\nb = neg a\n");
  DependenceDAG D = buildDAG(T);
  MachineModel Piped =
      MachineModel::homogeneous(2, 8).withLatencies(3, 3, 3).withPipelinedFUs();
  Schedule S = listSchedule(D, Piped);
  EXPECT_EQ(S.CycleOf[DependenceDAG::nodeOf(1)], 3)
      << "data dependences still wait the full latency";
}

TEST(Simulator, RejectsNonPipelinedBackToBack) {
  // Issue two ops on one non-pipelined latency-3 unit a cycle apart: the
  // hardware check must fire.
  MachineModel M = MachineModel::homogeneous(1, 8).withLatencies(3, 3, 3);
  VLIWProgram P(M, {}, 0);
  auto Ldi = [&](int Dest, int64_t V) {
    Instruction I(Opcode::LoadImm);
    I.setDest(Dest);
    I.setIntImm(V);
    return VLIWOp{I, 0};
  };
  P.newWord().Ops.push_back(Ldi(0, 1));
  P.newWord().Ops.push_back(Ldi(1, 2));
  SimResult R = simulate(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("over-subscribed"), std::string::npos);
}

TEST(Simulator, AcceptsPipelinedBackToBack) {
  MachineModel M =
      MachineModel::homogeneous(1, 8).withLatencies(3, 3, 3).withPipelinedFUs();
  VLIWProgram P(M, {"out"}, 0);
  auto Ldi = [&](int Dest, int64_t V) {
    Instruction I(Opcode::LoadImm);
    I.setDest(Dest);
    I.setIntImm(V);
    return VLIWOp{I, 0};
  };
  P.newWord().Ops.push_back(Ldi(0, 1));
  P.newWord().Ops.push_back(Ldi(1, 2));
  for (int I = 0; I != 3; ++I)
    P.newWord();
  {
    Instruction St(Opcode::Store);
    St.setSymbol(0);
    St.setOperand(0, 1);
    P.newWord().Ops.push_back({St, 0});
  }
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["out"].I, 2);
}

TEST(EndToEnd, PipelinedDifferential) {
  // The full URSA pipeline on a pipelined machine stays correct.
  MachineModel M =
      MachineModel::homogeneous(2, 8).withLatencies(1, 4, 2).withPipelinedFUs();
  RNG InputRng(23);
  for (auto &[Name, T] : kernelSuite()) {
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << Name << ": " << R.Compile.Error;
    MemoryState In = randomInputs(T, InputRng);
    SimResult Got = simulate(*R.Compile.Prog, In);
    ASSERT_TRUE(Got.Ok) << Name << ": " << Got.Error;
    EXPECT_TRUE(Got.Exec == interpret(T, In)) << Name;
  }
}

TEST(EndToEnd, PipeliningShortensLatencyBoundSchedules) {
  // With one float unit, ample registers and latency-4 float ops, the
  // butterfly is float-occupancy bound; pipelining the unit must help.
  Trace T = butterflyTrace(3);
  MachineModel NonPiped =
      MachineModel::classed(2, 1, 2, 16, 16).withLatencies(1, 4, 2);
  MachineModel Piped = MachineModel::classed(2, 1, 2, 16, 16)
                           .withLatencies(1, 4, 2)
                           .withPipelinedFUs();
  CompileResult A = compileURSA(T, NonPiped).Compile;
  CompileResult B = compileURSA(T, Piped).Compile;
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_LT(B.Cycles, A.Cycles);
}
