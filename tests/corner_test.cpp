//===- tests/corner_test.cpp - Corner cases across modules ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"
#include "cfg/CFGParser.h"
#include "cfg/Unroll.h"
#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "order/Matching.h"
#include "sched/GraphColoring.h"
#include "sched/Pipelines.h"
#include "sched/RegAssign.h"
#include "vliw/Simulator.h"

#include <gtest/gtest.h>

using namespace ursa;

//===----------------------------------------------------------------------===//
// Incremental matching priority stickiness.
//===----------------------------------------------------------------------===//

TEST(Matching, EarlierBatchesStayMatched) {
  // Batch 1 matches 0-:-2; batch 2 offers 0-:-3 and 1-:-2. The earlier
  // pair must persist (augmenting paths extend, never rip up), giving
  // 0->2 plus 1 unmatched... unless an augmenting path reroutes through
  // it — which is the allowed case. Verify sizes and that batch-1 edges
  // are used when a maximum matching exists within them.
  IncrementalMatcher M(4);
  M.addBatchAndAugment({{0, 2}});
  ASSERT_EQ(M.result().MatchOfLeft[0], 2);
  M.addBatchAndAugment({{1, 2}, {0, 3}});
  // Maximum over all edges is 2; the rerouting must keep 0 matched.
  EXPECT_EQ(M.result().Size, 2u);
  EXPECT_NE(M.result().MatchOfLeft[0], -1);
  EXPECT_NE(M.result().MatchOfLeft[1], -1);
}

TEST(Matching, EmptyBatchesAreHarmless) {
  IncrementalMatcher M(3);
  M.addBatchAndAugment({});
  EXPECT_EQ(M.result().Size, 0u);
  M.addBatchAndAugment({{0, 1}});
  M.addBatchAndAugment({});
  EXPECT_EQ(M.result().Size, 1u);
}

//===----------------------------------------------------------------------===//
// Same-cycle register reuse is real and simulates correctly.
//===----------------------------------------------------------------------===//

TEST(RegAssign, SameCycleReuseSurvivesSimulation) {
  // Two values whose lifetimes touch at one cycle: the reader and the
  // next writer share a word; the simulator's read-before-write
  // semantics must make the linear-scan packing safe.
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = load y\n"
                            "c = add a, b\n" // last read of a and b
                            "d = neg a\n"
                            "e = add c, d\n"
                            "store out, e\n");
  MachineModel M = MachineModel::homogeneous(4, 3);
  CompileResult R = compilePrepass(T, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  MemoryState In;
  In["x"] = Value::ofInt(10);
  In["y"] = Value::ofInt(5);
  SimResult S = simulate(*R.Prog, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Exec.Memory["out"].I, 15 + -10);
}

//===----------------------------------------------------------------------===//
// Classed machines in the simulator: separate register files.
//===----------------------------------------------------------------------===//

TEST(Simulator, ClassedFilesDoNotAlias) {
  // GPR 0 and FPR 0 are different registers on a classed machine.
  MachineModel M = MachineModel::classed(1, 1, 1, 4, 4);
  VLIWProgram P(M, {"io", "fo"}, 0);
  {
    Instruction I(Opcode::LoadImm);
    I.setDest(0);
    I.setIntImm(7);
    P.newWord().Ops.push_back({I, 0});
  }
  {
    Instruction I(Opcode::FLoadImm);
    I.setDomain(Domain::Float);
    I.setDest(0);
    I.setFltImm(2.5);
    P.newWord().Ops.push_back({I, 0});
  }
  {
    Instruction St(Opcode::Store);
    St.setSymbol(0);
    St.setOperand(0, 0);
    P.newWord().Ops.push_back({St, 0});
  }
  {
    Instruction St(Opcode::FStore);
    St.setDomain(Domain::Float);
    St.setSymbol(1);
    St.setOperand(0, 0);
    P.newWord().Ops.push_back({St, 0});
  }
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Exec.Memory["io"].I, 7);
  EXPECT_DOUBLE_EQ(R.Exec.Memory["fo"].F, 2.5);
}

//===----------------------------------------------------------------------===//
// CFG corners.
//===----------------------------------------------------------------------===//

TEST(CFG, DiamondFrequenciesSplitByProbability) {
  CFGFunction F = parseCFGOrDie("func d {\n"
                                "block a:\n"
                                "  x = ldi 1\n"
                                "  br x ? b:0.25 : c\n"
                                "block b:\n"
                                "  jmp e\n"
                                "block c:\n"
                                "  jmp e\n"
                                "block e:\n"
                                "  ret\n"
                                "}\n");
  std::vector<double> Freq = estimateBlockFrequencies(F);
  EXPECT_NEAR(Freq[F.blockByName("b")], 0.25, 1e-9);
  EXPECT_NEAR(Freq[F.blockByName("c")], 0.75, 1e-9);
  EXPECT_NEAR(Freq[F.blockByName("e")], 1.0, 1e-9);
}

TEST(TraceFormation, JumpSelfLoopDoesNotHang) {
  CFGFunction F = parseCFGOrDie("func spin {\nblock a:\n  jmp a\n}\n");
  TraceSet TS = formTraces(F);
  ASSERT_EQ(TS.Traces.size(), 1u);
  EXPECT_EQ(TS.Traces[0].Blocks.size(), 1u);
  EXPECT_EQ(TS.Traces[0].FallthroughBlock, 0);
}

TEST(Unroll, FallArmLoopUnrollsToo) {
  // The loop continues through the *fall* arm here.
  CFGFunction F = parseCFGOrDie("func f {\n"
                                "block entry:\n"
                                "  jmp loop\n"
                                "block loop:\n"
                                "  i  = load i\n"
                                "  k  = ldi 1\n"
                                "  i2 = sub i, k\n"
                                "  store i, i2\n"
                                "  c  = cmplt i2, k\n" // exit when i2 < 1
                                "  br c ? exit:0.1 : loop\n"
                                "block exit:\n"
                                "  ret\n"
                                "}\n");
  CFGFunction U = unrollLoops(F, 3);
  EXPECT_EQ(U.numBlocks(), 5u);
  EXPECT_TRUE(U.verify().empty());
  for (int64_t N : {0, 1, 4, 7}) {
    MemoryState In;
    In["i"] = Value::ofInt(N);
    CFGExecResult Want = interpretCFG(F, In);
    CFGExecResult Got = interpretCFG(U, In);
    ASSERT_TRUE(Want.Ok && Got.Ok);
    EXPECT_EQ(Got.Memory, Want.Memory) << "n=" << N;
  }
}

TEST(CFGCompiler, SingleBlockFunction) {
  CFGFunction F = parseCFGOrDie("func one {\n"
                                "block a:\n"
                                "  x = ldi 21\n"
                                "  y = add x, x\n"
                                "  store out, y\n"
                                "  ret\n"
                                "}\n");
  MachineModel M = MachineModel::homogeneous(2, 4);
  CompiledCFG C = compileCFGWithURSA(F, M);
  ASSERT_TRUE(C.Ok) << C.Error;
  CFGExecResult R = runCompiledCFG(F, C, {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Memory["out"].I, 42);
  EXPECT_EQ(R.Path, std::vector<unsigned>{0u});
}

TEST(CFGCompiler, EmptyBlocksAreFine) {
  CFGFunction F = parseCFGOrDie("func hop {\n"
                                "block a:\n"
                                "  jmp b\n"
                                "block b:\n"
                                "  jmp c\n"
                                "block c:\n"
                                "  ret\n"
                                "}\n");
  MachineModel M = MachineModel::homogeneous(2, 4);
  CompiledCFG C = compileCFGWithURSA(F, M);
  ASSERT_TRUE(C.Ok) << C.Error;
  CFGExecResult R = runCompiledCFG(F, C, {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Memory.empty());
}

//===----------------------------------------------------------------------===//
// Pipelines corners.
//===----------------------------------------------------------------------===//

TEST(Pipelines, EmptyTraceCompiles) {
  Trace T("empty");
  for (auto *Compile : {&compilePrepass, &compilePostpass,
                        &compileIntegrated}) {
    CompileResult R = (*Compile)(T, MachineModel::homogeneous(2, 4));
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Prog->numOps(), 0u);
    SimResult S = simulate(*R.Prog);
    EXPECT_TRUE(S.Ok);
  }
}

TEST(Pipelines, SingleInstructionTrace) {
  Trace T = parseTraceOrDie("x = ldi 5\nstore out, x\n");
  CompileResult R = compilePrepass(T, MachineModel::homogeneous(1, 1));
  ASSERT_TRUE(R.Ok) << R.Error;
  SimResult S = simulate(*R.Prog);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Exec.Memory["out"].I, 5);
}

TEST(Pipelines, RegisterFileOfOneFailsGracefullyWhenImpossible) {
  // add needs two live operands; one register cannot ever hold them.
  Trace T = parseTraceOrDie("a = load x\nb = load y\nc = add a, b\n"
                            "store out, c\n");
  CompileResult R = compilePrepass(T, MachineModel::homogeneous(2, 1));
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}
