//===- tests/transport_test.cpp - TCP transport and wire faults -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet-grade transport story: TCP endpoints next to Unix sockets,
// the wire fault matrix (every WireFault either surfaces as a clean
// Status on the injecting side or is healed by the server dropping the
// connection — never a hang, crash, or duplicate compile), fuzz-style
// malformed wire input (oversized length prefixes, zero-length frames,
// JSON depth bombs inside valid frames), idle-connection reaping, and
// the supervised client's at-most-once retry discipline checked against
// a scripted fake server that counts what it actually received.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"
#include "support/Socket.h"
#include "ursa/FaultInjector.h"
#include "workload/Generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ursa;
using namespace ursa::service;

namespace {

std::string genSource(uint64_t Seed) {
  GenOptions G;
  G.NumInstrs = 24;
  G.Window = 8;
  G.Seed = Seed;
  return generateTrace(G).str();
}

ServiceRequest compileRequest(std::string Id, uint64_t Seed) {
  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Compile;
  R.Id = std::move(Id);
  R.Source = genSource(Seed);
  R.Machine.Fus = 2;
  R.Machine.Regs = 4;
  return R;
}

/// A running TCP server plus the endpoint string to reach it.
struct TcpServer {
  Server Srv;
  std::thread Runner;
  std::string Endpoint;

  explicit TcpServer(ServiceConfig Cfg) : Srv("tcp:0", Cfg) {
    Status St = Srv.start();
    EXPECT_TRUE(St.isOk()) << St.str();
    Endpoint = "tcp:" + std::to_string(Srv.port());
    Runner = std::thread([this] { Srv.run(); });
  }
  ~TcpServer() {
    Srv.requestStop();
    Runner.join();
  }
};

/// One healthy request/response over a fresh connection — the liveness
/// probe every fault test ends with.
void expectServerHealthy(const std::string &Endpoint) {
  StatusOr<ServiceClient> COr = ServiceClient::connect(Endpoint);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();
  ServiceResponse R;
  Status St = COr->call(compileRequest("probe", 5), R);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok) << R.Error;
}

} // namespace

//===----------------------------------------------------------------------===//
// Endpoints and raw TCP framing
//===----------------------------------------------------------------------===//

TEST(SocketEndpoints, ParseCoversAllSpellings) {
  bool IsTcp;
  std::string Host;
  uint16_t Port;

  ASSERT_TRUE(Socket::parseEndpoint("unix:/tmp/x.sock", IsTcp, Host, Port));
  EXPECT_FALSE(IsTcp);
  EXPECT_EQ(Host, "/tmp/x.sock");

  ASSERT_TRUE(Socket::parseEndpoint("/tmp/bare.sock", IsTcp, Host, Port));
  EXPECT_FALSE(IsTcp);
  EXPECT_EQ(Host, "/tmp/bare.sock");

  ASSERT_TRUE(Socket::parseEndpoint("tcp:8080", IsTcp, Host, Port));
  EXPECT_TRUE(IsTcp);
  EXPECT_EQ(Host, "");
  EXPECT_EQ(Port, 8080);

  ASSERT_TRUE(Socket::parseEndpoint("tcp:127.0.0.1:9999", IsTcp, Host, Port));
  EXPECT_TRUE(IsTcp);
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9999);

  EXPECT_FALSE(Socket::parseEndpoint("tcp:", IsTcp, Host, Port));
  EXPECT_FALSE(Socket::parseEndpoint("tcp:notaport", IsTcp, Host, Port));
  EXPECT_FALSE(Socket::parseEndpoint("tcp:host:notaport", IsTcp, Host, Port));
  EXPECT_FALSE(Socket::parseEndpoint("", IsTcp, Host, Port));
}

TEST(SocketEndpoints, ParsesBracketedIpv6) {
  bool IsTcp;
  std::string Host;
  uint16_t Port;

  ASSERT_TRUE(Socket::parseEndpoint("tcp:[::1]:8080", IsTcp, Host, Port));
  EXPECT_TRUE(IsTcp);
  EXPECT_EQ(Host, "::1");
  EXPECT_EQ(Port, 8080);

  ASSERT_TRUE(
      Socket::parseEndpoint("tcp:[fe80::1234:5]:9", IsTcp, Host, Port));
  EXPECT_EQ(Host, "fe80::1234:5");
  EXPECT_EQ(Port, 9);

  // The brackets are endpoint syntax, not address syntax: the parsed host
  // is the bare address the resolver wants.
  ASSERT_TRUE(Socket::parseEndpoint("tcp:[2001:db8::1]:65535", IsTcp, Host,
                                    Port));
  EXPECT_EQ(Host, "2001:db8::1");
  EXPECT_EQ(Port, 65535);
}

TEST(SocketEndpoints, Ipv6ErrorsNameTheProblem) {
  bool IsTcp;
  std::string Host;
  uint16_t Port;
  std::string Err;

  // Unterminated bracket.
  EXPECT_FALSE(Socket::parseEndpoint("tcp:[::1:80", IsTcp, Host, Port, &Err));
  EXPECT_NE(Err.find("unterminated"), std::string::npos) << Err;

  // Bracketed but no port.
  Err.clear();
  EXPECT_FALSE(Socket::parseEndpoint("tcp:[::1]", IsTcp, Host, Port, &Err));
  EXPECT_NE(Err.find("PORT"), std::string::npos) << Err;

  // Empty address inside the brackets.
  Err.clear();
  EXPECT_FALSE(Socket::parseEndpoint("tcp:[]:80", IsTcp, Host, Port, &Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;

  // A raw multi-colon host is ambiguous (is ":80" part of the address?);
  // the error teaches the bracket spelling — with the caller's own
  // endpoint rewritten into it, copy-pasteable.
  Err.clear();
  EXPECT_FALSE(
      Socket::parseEndpoint("tcp:2001:db8::1:80", IsTcp, Host, Port, &Err));
  EXPECT_NE(Err.find("bracketed"), std::string::npos) << Err;
  EXPECT_NE(Err.find("[2001:db8::1]:80"), std::string::npos) << Err;
}

TEST(SocketEndpoints, ConnectErrorRebracketsIpv6Hosts) {
  // Nothing listens on this port; the refusal's message must show the
  // endpoint in its bracketed spelling, copy-pasteable back into --connect.
  StatusOr<Socket> SOr = Socket::connectEndpoint("tcp:[::1]:1");
  ASSERT_FALSE(SOr.isOk());
  EXPECT_NE(SOr.status().message().find("[::1]:1"), std::string::npos)
      << SOr.status().str();
}

TEST(SocketEndpoints, SplitsEndpointLists) {
  std::vector<std::string> L =
      Socket::splitEndpointList("tcp:[::1]:80,unix:/tmp/a.sock,,tcp:9");
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0], "tcp:[::1]:80"); // the comma split must not cut inside
  EXPECT_EQ(L[1], "unix:/tmp/a.sock");
  EXPECT_EQ(L[2], "tcp:9");
  EXPECT_TRUE(Socket::splitEndpointList("").empty());
}

TEST(SocketEndpoints, ConnectAnyFallsThroughDeadEndpoints) {
  ServiceConfig Cfg;
  TcpServer T(Cfg);

  // First endpoint refuses, second is the live server.
  size_t Which = 99;
  StatusOr<Socket> SOr = Socket::connectAnyEndpoint(
      {"tcp:127.0.0.1:1", T.Endpoint}, &Which);
  ASSERT_TRUE(SOr.isOk()) << SOr.status().str();
  EXPECT_EQ(Which, 1u);

  // All dead: the last error surfaces, nothing hangs.
  StatusOr<Socket> Dead =
      Socket::connectAnyEndpoint({"tcp:127.0.0.1:1", "tcp:127.0.0.1:2"});
  EXPECT_FALSE(Dead.isOk());
  StatusOr<Socket> None = Socket::connectAnyEndpoint({});
  EXPECT_FALSE(None.isOk());
}

TEST(SocketEndpoints, Ipv6LoopbackRoundTripsWhenAvailable) {
  StatusOr<Socket> LOr = Socket::listenTcp("::1", 0);
  if (!LOr.isOk())
    GTEST_SKIP() << "no IPv6 loopback here: " << LOr.status().str();
  uint16_t Port = LOr->localPort();
  ASSERT_NE(Port, 0);

  std::thread Peer([&] {
    StatusOr<Socket> A = LOr->accept(2000);
    ASSERT_TRUE(A.isOk() && A->valid());
    std::string In;
    bool Closed = false;
    ASSERT_TRUE(A->recvFrame(In, Closed).isOk());
    ASSERT_TRUE(A->sendFrame("v6:" + In).isOk());
  });
  StatusOr<Socket> COr =
      Socket::connectEndpoint("tcp:[::1]:" + std::to_string(Port));
  ASSERT_TRUE(COr.isOk()) << COr.status().str();
  ASSERT_TRUE(COr->sendFrame("ping").isOk());
  std::string Back;
  bool Closed = false;
  ASSERT_TRUE(COr->recvFrame(Back, Closed).isOk());
  EXPECT_EQ(Back, "v6:ping");
  Peer.join();
}

TEST(SocketTcp, FramesRoundTripBothWays) {
  StatusOr<Socket> LOr = Socket::listenTcp("", 0);
  ASSERT_TRUE(LOr.isOk()) << LOr.status().str();
  uint16_t Port = LOr->localPort();
  ASSERT_NE(Port, 0);

  std::thread Peer([&] {
    StatusOr<Socket> A = LOr->accept(2000);
    ASSERT_TRUE(A.isOk() && A->valid());
    std::string In;
    bool Closed = false;
    ASSERT_TRUE(A->recvFrame(In, Closed).isOk());
    ASSERT_FALSE(Closed);
    ASSERT_TRUE(A->sendFrame("echo:" + In).isOk());
  });

  StatusOr<Socket> COr = Socket::connectTcp("", Port);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();
  // A payload with embedded NULs and high bytes — framing is 8-bit clean.
  std::string Payload("b\0in\xff" "ary", 8);
  ASSERT_TRUE(COr->sendFrame(Payload).isOk());
  std::string Back;
  bool Closed = false;
  ASSERT_TRUE(COr->recvFrame(Back, Closed).isOk());
  EXPECT_EQ(Back, "echo:" + Payload);
  Peer.join();
}

TEST(SocketTcp, OpTimeoutBoundsAMidFrameStall) {
  StatusOr<Socket> LOr = Socket::listenTcp("", 0);
  ASSERT_TRUE(LOr.isOk());
  StatusOr<Socket> COr = Socket::connectTcp("", LOr->localPort());
  ASSERT_TRUE(COr.isOk());
  StatusOr<Socket> AOr = LOr->accept(2000);
  ASSERT_TRUE(AOr.isOk() && AOr->valid());

  // The peer sends a header promising bytes that never come; the 50 ms
  // op deadline turns that into an error instead of a pinned reader.
  ASSERT_TRUE(AOr->setOpTimeoutMs(50).isOk());
  Status Injected =
      injectWireFault(*COr, WireFault::StalledWrite, "stalled-payload", 400);
  EXPECT_TRUE(Injected.isOk()) << Injected.str();

  auto Start = std::chrono::steady_clock::now();
  std::string Out;
  Socket::FrameEvent Ev;
  Status St = AOr->recvFrame(Out, Ev);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  EXPECT_FALSE(St.isOk()) << "a stalled frame must not read as complete";
  EXPECT_LT(Ms, 350.0) << "op timeout did not bound the stall";
}

TEST(SocketTcp, IdleFirstByteTimeoutIsDistinctFromAStall) {
  StatusOr<Socket> LOr = Socket::listenTcp("", 0);
  ASSERT_TRUE(LOr.isOk());
  StatusOr<Socket> COr = Socket::connectTcp("", LOr->localPort());
  ASSERT_TRUE(COr.isOk());
  StatusOr<Socket> AOr = LOr->accept(2000);
  ASSERT_TRUE(AOr.isOk() && AOr->valid());

  // Nothing arrives at all: that is IdleTimeout, an OK status — the
  // server's cue to reap, not a transport error.
  std::string Out;
  Socket::FrameEvent Ev;
  Status St = AOr->recvFrame(Out, Ev, 64u << 20, /*FirstByteTimeoutMs=*/40);
  EXPECT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Ev, Socket::FrameEvent::IdleTimeout);

  // A clean close reads as PeerClosed, also OK.
  COr->close();
  St = AOr->recvFrame(Out, Ev, 64u << 20, 1000);
  EXPECT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Ev, Socket::FrameEvent::PeerClosed);
}

//===----------------------------------------------------------------------===//
// TCP compile service end to end
//===----------------------------------------------------------------------===//

TEST(TcpService, CompilesMatchUnixSocketBehavior) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  TcpServer T(Cfg);

  StatusOr<ServiceClient> COr = ServiceClient::connect(T.Endpoint);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();
  const unsigned N = 6;
  for (unsigned I = 0; I != N; ++I)
    ASSERT_TRUE(COr->send(compileRequest(std::to_string(I), I + 1)).isOk());
  unsigned Ok = 0;
  for (unsigned I = 0; I != N; ++I) {
    ServiceResponse R;
    bool Closed = false;
    ASSERT_TRUE(COr->recv(R, Closed).isOk());
    ASSERT_FALSE(Closed);
    Ok += R.Status == ServiceResponse::StatusKind::Ok;
  }
  EXPECT_EQ(Ok, N);
}

//===----------------------------------------------------------------------===//
// Wire fault matrix
//===----------------------------------------------------------------------===//

/// Every injectable wire fault, against a live TCP server with a
/// per-operation IO deadline. The contract for each row: the injection
/// itself never crashes the test process, the server never hangs, and a
/// fresh client still gets service afterwards.
TEST(WireFaultMatrix, EveryFaultIsCaughtOrHealed) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.IoTimeoutMs = 100; // heals StalledWrite by unpinning the reader
  TcpServer T(Cfg);

  const WireFault Matrix[] = {
      WireFault::TruncatedFrame,   WireFault::TornHeader,
      WireFault::StalledWrite,     WireFault::MidStreamDisconnect,
      WireFault::GarbageLength,
  };
  std::string Payload = writeRequest(compileRequest("faulty", 3));

  for (WireFault F : Matrix) {
    SCOPED_TRACE(wireFaultName(F));
    StatusOr<Socket> SOr = Socket::connectEndpoint(T.Endpoint);
    ASSERT_TRUE(SOr.isOk()) << SOr.status().str();
    Status St = injectWireFault(*SOr, F, Payload, /*StallMs=*/250);
    // The injection reports honestly but never aborts.
    (void)St;

    // The mangled connection is dead or dying; the server must shrug it
    // off and keep serving. (For StalledWrite the IO deadline fires at
    // 100 ms; the probe below implicitly waits on connect/compile.)
    expectServerHealthy(T.Endpoint);
  }

  // After the whole matrix the server still reports zero compiles lost:
  // every probe answered, nothing wedged a worker.
  ServiceCounters C = T.Srv.service().counters();
  EXPECT_EQ(C.InFlight, 0u);
  EXPECT_EQ(C.Completed, unsigned(std::size(Matrix)));
}

TEST(WireFaultMatrix, FaultsDoNotDuplicateCompiles) {
  // A fault injected *after* a completed request must not make the server
  // run anything twice: received counts exactly the clean requests.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.IoTimeoutMs = 100;
  TcpServer T(Cfg);

  {
    StatusOr<ServiceClient> COr = ServiceClient::connect(T.Endpoint);
    ASSERT_TRUE(COr.isOk());
    ServiceResponse R;
    ASSERT_TRUE(COr->call(compileRequest("one", 7), R).isOk());
    EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok);
    // Now mangle the same connection and walk away.
    // (The client object owns the socket; a second raw connection is
    // mangled instead — the server treats each connection independently.)
  }
  {
    StatusOr<Socket> SOr = Socket::connectEndpoint(T.Endpoint);
    ASSERT_TRUE(SOr.isOk());
    (void)injectWireFault(*SOr, WireFault::MidStreamDisconnect,
                          writeRequest(compileRequest("mangled", 8)));
  }
  expectServerHealthy(T.Endpoint);

  ServiceCounters C = T.Srv.service().counters();
  // "one" + the health probe; the mangled frame never became a request.
  EXPECT_EQ(C.Received, 2u);
  EXPECT_EQ(C.Completed, 2u);
}

//===----------------------------------------------------------------------===//
// Fuzz-style malformed wire input
//===----------------------------------------------------------------------===//

TEST(MalformedWire, OversizedLengthPrefixDropsTheConnection) {
  ServiceConfig Cfg;
  TcpServer T(Cfg);

  StatusOr<Socket> SOr = Socket::connectEndpoint(T.Endpoint);
  ASSERT_TRUE(SOr.isOk());
  // 0xFFFFFFFF bytes: no peer should trust it, and the server must sever
  // rather than allocate. We observe the connection dying from our side.
  const char Huge[] = {'\xff', '\xff', '\xff', '\xff', 'x', 'x'};
  (void)SOr->sendRaw(std::string_view(Huge, sizeof(Huge)));
  SOr->setOpTimeoutMs(2000);
  std::string Out;
  Socket::FrameEvent Ev = Socket::FrameEvent::Frame;
  Status St = SOr->recvFrame(Out, Ev);
  EXPECT_TRUE(!St.isOk() || Ev == Socket::FrameEvent::PeerClosed)
      << "server kept an out-of-sync connection alive";
  expectServerHealthy(T.Endpoint);
}

TEST(MalformedWire, ZeroLengthFrameIsACleanProtocolError) {
  ServiceConfig Cfg;
  TcpServer T(Cfg);

  StatusOr<Socket> SOr = Socket::connectEndpoint(T.Endpoint);
  ASSERT_TRUE(SOr.isOk());
  ASSERT_TRUE(SOr->sendFrame("").isOk());
  std::string Out;
  bool Closed = false;
  ASSERT_TRUE(SOr->recvFrame(Out, Closed).isOk());
  ASSERT_FALSE(Closed);
  ServiceResponse R;
  ASSERT_TRUE(parseResponse(Out, R).isOk());
  EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Error);
  // The connection survives; a real request on it still works.
  ServiceRequest Ping;
  Ping.Op = ServiceRequest::OpKind::Ping;
  Ping.Id = "after-empty";
  ASSERT_TRUE(SOr->sendFrame(writeRequest(Ping)).isOk());
  ASSERT_TRUE(SOr->recvFrame(Out, Closed).isOk());
  ASSERT_FALSE(Closed);
  ASSERT_TRUE(parseResponse(Out, R).isOk());
  EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Ok);
}

TEST(MalformedWire, JsonDepthBombInAValidFrameIsRejected) {
  ServiceConfig Cfg;
  TcpServer T(Cfg);

  StatusOr<Socket> SOr = Socket::connectEndpoint(T.Endpoint);
  ASSERT_TRUE(SOr.isOk());
  // A perfectly framed payload whose JSON nests 4096 deep: the parser's
  // depth limit must answer with a clean error, not recurse to death.
  std::string Bomb = "{\"schema\":\"ursa.service_request.v1\",\"a\":";
  Bomb += std::string(4096, '[');
  Bomb += "1";
  Bomb += std::string(4096, ']');
  Bomb += "}";
  ASSERT_TRUE(SOr->sendFrame(Bomb).isOk());
  std::string Out;
  bool Closed = false;
  ASSERT_TRUE(SOr->recvFrame(Out, Closed).isOk());
  ASSERT_FALSE(Closed);
  ServiceResponse R;
  ASSERT_TRUE(parseResponse(Out, R).isOk());
  EXPECT_EQ(R.Status, ServiceResponse::StatusKind::Error);
  expectServerHealthy(T.Endpoint);
}

//===----------------------------------------------------------------------===//
// Idle reaping
//===----------------------------------------------------------------------===//

TEST(IdleReaping, SilentConnectionsAreClosedLoudOnesAreNot) {
  ServiceConfig Cfg;
  Cfg.IdleTimeoutMs = 60;
  TcpServer T(Cfg);

  // A connection that never speaks is reaped: we see a close.
  StatusOr<Socket> Quiet = Socket::connectEndpoint(T.Endpoint);
  ASSERT_TRUE(Quiet.isOk());
  Quiet->setOpTimeoutMs(2000);
  std::string Out;
  Socket::FrameEvent Ev = Socket::FrameEvent::Frame;
  Status St = Quiet->recvFrame(Out, Ev);
  EXPECT_TRUE((St.isOk() && Ev == Socket::FrameEvent::PeerClosed) ||
              !St.isOk())
      << "idle connection was never reaped";

  // A connection that keeps making requests inside the window is not.
  StatusOr<ServiceClient> Busy = ServiceClient::connect(T.Endpoint);
  ASSERT_TRUE(Busy.isOk());
  for (unsigned I = 0; I != 4; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ServiceRequest Ping;
    Ping.Op = ServiceRequest::OpKind::Ping;
    Ping.Id = "keepalive";
    ServiceResponse R;
    Status Call = Busy->call(Ping, R);
    ASSERT_TRUE(Call.isOk()) << "reaped while active: " << Call.str();
  }
}

//===----------------------------------------------------------------------===//
// Supervised retries: at-most-once against a scripted peer
//===----------------------------------------------------------------------===//

namespace {

/// A fake server scripted per accepted connection. Counts every request
/// frame it actually reads — the ground truth for at-most-once claims.
struct ScriptedPeer {
  enum class Script {
    CloseBeforeResponse, ///< read the request, clean FIN, no response
    ResetMidResponse,    ///< read the request, start a response, die dirty
    AnswerBusy,          ///< answer busy_retry_later, keep the connection
    AnswerOk             ///< read the request, answer it properly
  };

  Socket Listener;
  std::string Endpoint;
  std::vector<Script> Scripts;
  std::atomic<unsigned> RequestsSeen{0};
  std::thread Runner;

  explicit ScriptedPeer(std::vector<Script> S) : Scripts(std::move(S)) {
    StatusOr<Socket> LOr = Socket::listenTcp("", 0);
    EXPECT_TRUE(LOr.isOk());
    Listener = std::move(*LOr);
    Endpoint = "tcp:" + std::to_string(Listener.localPort());
    Runner = std::thread([this] { serve(); });
  }
  ~ScriptedPeer() {
    Listener.close();
    Runner.join();
  }

  void serve() {
    // A Busy answer keeps its connection; the next script serves the
    // retry arriving on it instead of a fresh accept.
    Socket Live;
    for (Script S : Scripts) {
      if (!Live.valid()) {
        StatusOr<Socket> AOr = Listener.accept(5000);
        if (!AOr.isOk() || !AOr->valid())
          return;
        Live = std::move(*AOr);
      }
      std::string Frame;
      bool Closed = false;
      if (!Live.recvFrame(Frame, Closed).isOk() || Closed) {
        Live.close();
        continue;
      }
      ++RequestsSeen;
      ServiceRequest R;
      if (!parseRequest(Frame, R).isOk()) {
        Live.close();
        continue;
      }
      switch (S) {
      case Script::CloseBeforeResponse:
        Live.close(); // clean FIN before any response byte
        break;
      case Script::AnswerBusy: {
        ServiceResponse Resp;
        Resp.Status = ServiceResponse::StatusKind::Busy;
        Resp.Id = R.Id;
        Resp.Error = "no live backend";
        (void)Live.sendFrame(writeResponse(Resp));
        break; // keep the connection: the retry rides it
      }
      case Script::ResetMidResponse: {
        ServiceResponse Resp;
        Resp.Status = ServiceResponse::StatusKind::Ok;
        Resp.Id = R.Id;
        (void)injectWireFault(Live, WireFault::MidStreamDisconnect,
                              writeResponse(Resp));
        Live.close();
        break;
      }
      case Script::AnswerOk: {
        ServiceResponse Resp;
        Resp.Status = ServiceResponse::StatusKind::Ok;
        Resp.Id = R.Id;
        Resp.Text = "scripted-ok";
        (void)Live.sendFrame(writeResponse(Resp));
        // Let the client read before the socket drops.
        std::string Dummy;
        bool C2 = false;
        (void)Live.recvFrame(Dummy, C2);
        Live.close();
        break;
      }
      }
    }
  }
};

} // namespace

TEST(SupervisedRetry, CleanPreResponseCloseIsRetriedOnce) {
  // Script: first connection reads the request and closes cleanly (the
  // server provably never answered — safe to retry); the second answers.
  ScriptedPeer Peer({ScriptedPeer::Script::CloseBeforeResponse,
                     ScriptedPeer::Script::AnswerOk});

  RetryPolicy P;
  P.MaxRetries = 3;
  P.BackoffBaseMs = 1;
  StatusOr<ServiceClient> COr = ServiceClient::connectWithRetry(Peer.Endpoint, P);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();

  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Ping;
  R.Id = "supervised";
  ServiceResponse Out;
  Status St = COr->callSupervised(R, Out);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Out.Text, "scripted-ok");
  EXPECT_EQ(Peer.RequestsSeen.load(), 2u)
      << "exactly one retry of a provably-unstarted request";
}

TEST(SupervisedRetry, DirtyMidResponseFailureIsNeverRetried) {
  // The peer dies *inside* the response: the request may have executed, so
  // the at-most-once rule forbids a replay — the client must fail without
  // ever sending a second copy.
  ScriptedPeer Peer({ScriptedPeer::Script::ResetMidResponse,
                     ScriptedPeer::Script::AnswerOk});

  RetryPolicy P;
  P.MaxRetries = 3;
  P.BackoffBaseMs = 1;
  StatusOr<ServiceClient> COr = ServiceClient::connectWithRetry(Peer.Endpoint, P);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();

  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Ping;
  R.Id = "at-most-once";
  ServiceResponse Out;
  Status St = COr->callSupervised(R, Out);
  EXPECT_FALSE(St.isOk()) << "a mid-response reset cannot succeed";
  // Give any wrongly-scheduled retry a moment to land before asserting.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Peer.RequestsSeen.load(), 1u)
      << "the request was replayed after an indeterminate failure";
}

TEST(SupervisedRetry, ReconnectsAfterServerRestartOnTheSameEndpoint) {
  // A real server drains and a new one comes up on the same Unix path; a
  // supervised call spanning the gap reconnects and succeeds.
  std::string Path =
      "/tmp/ursa_transport_restart_" + std::to_string(::getpid()) + ".sock";
  ServiceConfig Cfg;

  auto StartServer = [&] {
    auto S = std::make_unique<Server>(Path, Cfg);
    Status St = S->start();
    EXPECT_TRUE(St.isOk()) << St.str();
    return S;
  };

  std::unique_ptr<Server> Srv = StartServer();
  std::thread Run1([&] { Srv->run(); });
  RetryPolicy P;
  P.MaxRetries = 5;
  P.BackoffBaseMs = 5;
  StatusOr<ServiceClient> COr = ServiceClient::connectWithRetry(Path, P);
  ASSERT_TRUE(COr.isOk());
  ServiceResponse Out;
  ASSERT_TRUE(COr->callSupervised(compileRequest("before", 2), Out).isOk());
  EXPECT_EQ(Out.Status, ServiceResponse::StatusKind::Ok);

  Srv->requestStop();
  Run1.join();
  Srv = StartServer();
  std::thread Run2([&] { Srv->run(); });

  // The old connection is gone; the supervised call notices (clean close
  // or EPIPE, both retryable) and lands on the new server.
  Status St = COr->callSupervised(compileRequest("after", 3), Out);
  EXPECT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Out.Status, ServiceResponse::StatusKind::Ok);

  Srv->requestStop();
  Run2.join();
}

TEST(SupervisedRetry, BusyRetriesWithoutBurningTheBackoffBudget) {
  // Two busy_retry_later answers, then success — with MaxRetries = 0.
  // If Busy consumed the backoff budget the call would fail after the
  // first answer; the separate BusyRetryCap is what lets it through.
  ScriptedPeer Peer({ScriptedPeer::Script::AnswerBusy,
                     ScriptedPeer::Script::AnswerBusy,
                     ScriptedPeer::Script::AnswerOk});

  RetryPolicy P;
  P.MaxRetries = 0; // no transport-failure budget at all
  P.BusyDelayMs = 1;
  StatusOr<ServiceClient> COr =
      ServiceClient::connectWithRetry(Peer.Endpoint, P);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();

  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Ping;
  R.Id = "busy-free";
  ServiceResponse Out;
  Status St = COr->callSupervised(R, Out);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Out.Text, "scripted-ok");
  EXPECT_EQ(Peer.RequestsSeen.load(), 3u);
}

TEST(SupervisedRetry, BusyCapBoundsTheLoop) {
  // Nothing but busy answers: the BusyRetryCap (not a hang) ends it. The
  // cap overflow falls through to the shed path, which with MaxRetries=0
  // fails immediately.
  ScriptedPeer Peer({ScriptedPeer::Script::AnswerBusy,
                     ScriptedPeer::Script::AnswerBusy,
                     ScriptedPeer::Script::AnswerBusy,
                     ScriptedPeer::Script::AnswerBusy});

  RetryPolicy P;
  P.MaxRetries = 0;
  P.BusyRetryCap = 2;
  P.BusyDelayMs = 1;
  StatusOr<ServiceClient> COr =
      ServiceClient::connectWithRetry(Peer.Endpoint, P);
  ASSERT_TRUE(COr.isOk()) << COr.status().str();

  ServiceRequest R;
  R.Op = ServiceRequest::OpKind::Ping;
  R.Id = "busy-capped";
  ServiceResponse Out;
  Status St = COr->callSupervised(R, Out);
  EXPECT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("busy"), std::string::npos) << St.str();
  // Initial try + BusyRetryCap retries, nothing more.
  EXPECT_EQ(Peer.RequestsSeen.load(), 3u);
}

TEST(SupervisedRetry, ConnectRefusedExhaustsTheBudgetThenFails) {
  // Nothing listens here; the supervised connect burns its retries and
  // reports the refusal rather than hanging.
  RetryPolicy P;
  P.MaxRetries = 2;
  P.BackoffBaseMs = 1;
  P.BackoffMaxMs = 4;
  auto Start = std::chrono::steady_clock::now();
  StatusOr<ServiceClient> COr =
      ServiceClient::connectWithRetry("tcp:127.0.0.1:1", P);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  EXPECT_FALSE(COr.isOk());
  EXPECT_LT(Ms, 2000.0) << "refused connect should fail fast";
}
