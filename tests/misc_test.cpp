//===- tests/misc_test.cpp - Remaining API surface -------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "support/Dot.h"
#include "ursa/Measure.h"
#include "ursa/ReuseDAG.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ursa;

TEST(MachineModel, DescribeFormats) {
  EXPECT_EQ(MachineModel::homogeneous(4, 8).describe(), "4fu/8r");
  EXPECT_EQ(MachineModel::classed(2, 1, 1, 8, 4).describe(),
            "2i+1f+1m/8g+4f");
}

TEST(MachineModel, HomogeneousProperties) {
  MachineModel M = MachineModel::homogeneous(3, 7);
  EXPECT_TRUE(M.isHomogeneous());
  EXPECT_EQ(M.totalFUs(), 3u);
  EXPECT_EQ(M.numFUs(FUKind::Universal), 3u);
  EXPECT_EQ(M.numRegs(RegClassKind::GPR), 7u);
  EXPECT_EQ(M.numRegs(RegClassKind::FPR), 0u);
  EXPECT_EQ(M.latency(FUKind::Memory), 1u);
}

TEST(MachineModel, ClassedProperties) {
  MachineModel M = MachineModel::classed(2, 1, 3, 8, 4);
  EXPECT_FALSE(M.isHomogeneous());
  EXPECT_EQ(M.totalFUs(), 6u);
  EXPECT_EQ(M.numFUs(FUKind::FloatALU), 1u);
  EXPECT_EQ(M.numFUs(FUKind::Memory), 3u);
  M.withLatencies(1, 5, 3);
  EXPECT_EQ(M.latency(FUKind::FloatALU), 5u);
  EXPECT_EQ(M.latency(FUKind::Memory), 3u);
  EXPECT_EQ(M.latency(FUKind::IntALU), 1u);
}

TEST(DotWriter, EscapesAndStructures) {
  DotWriter W("g");
  W.addNode(0, "say \"hi\"", "shape=box");
  W.addNode(1, "b");
  W.addEdge(0, 1, "style=dashed");
  std::ostringstream OS;
  W.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(S.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(S.find("n0 -> n1 [style=dashed]"), std::string::npos);
}

TEST(DAG, ToDotListsAllNodesAndEdges) {
  DependenceDAG D = buildDAG(figure2Trace());
  DotWriter W("fig2");
  D.toDot(W);
  std::ostringstream OS;
  W.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("ENTRY"), std::string::npos);
  EXPECT_NE(S.find("EXIT"), std::string::npos);
  EXPECT_NE(S.find("load v"), std::string::npos);
  // 13 nodes -> 13 "label=" occurrences.
  size_t Count = 0, Pos = 0;
  while ((Pos = S.find("label=", Pos)) != std::string::npos) {
    ++Count;
    Pos += 6;
  }
  EXPECT_EQ(Count, 13u);
}

TEST(ReuseDAG, ReducedEdgesAreCoverRelations) {
  // Definition 4: the Reuse DAG is the transitive reduction — an edge
  // (a,b) has no interior witness, and its closure equals the relation.
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  ReuseRelation R = buildFUReuse(D, A);
  BitMatrix Red = reuseDAGEdges(R);
  for (unsigned X : R.Active) {
    Red.row(X).forEach([&](unsigned Y) {
      EXPECT_TRUE(R.Rel.test(X, Y));
      for (unsigned W : R.Active)
        EXPECT_FALSE(R.Rel.test(X, W) && R.Rel.test(W, Y))
            << "edge " << X << "->" << Y << " has witness " << W;
    });
  }
  // Closure of the reduction reproduces the relation.
  BitMatrix Closure = Red;
  // Propagate in reverse topological order of node ids (relation edges
  // always go to strictly later topo positions; iterate to fixpoint).
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (unsigned X : R.Active) {
      Bitset Before = Closure.row(X);
      Closure.row(X).forEach(
          [&](unsigned Y) { Closure.unionRows(X, Y); });
      Changed |= !(Before == Closure.row(X));
    }
  }
  for (unsigned X : R.Active)
    EXPECT_TRUE(Closure.row(X) == R.Rel.row(X)) << "node " << X;
}

TEST(Measure, ChainsCoveringCountsDistinctChains) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  Measurement M = measureResource(D, A, HF, Res);
  // All active nodes -> all chains.
  Bitset All(D.size());
  for (unsigned N : M.Reuse.Active)
    All.set(N);
  EXPECT_EQ(chainsCovering(M.Chains, All), M.Chains.width());
  // A single node -> exactly one chain.
  Bitset One(D.size());
  One.set(M.Reuse.Active.front());
  EXPECT_EQ(chainsCovering(M.Chains, One), 1u);
  // The empty set covers nothing.
  Bitset None(D.size());
  EXPECT_EQ(chainsCovering(M.Chains, None), 0u);
}

TEST(Instruction, StrCoversPayloadKinds) {
  Trace T("t");
  int A = T.emitLoadImm(-3);
  EXPECT_NE(T.instr(0).str().find("ldi -3"), std::string::npos);
  int F = T.emitFLoadImm(2.5);
  EXPECT_NE(T.instr(1).str().find("fldi 2.5"), std::string::npos);
  T.emitStore("result", A);
  EXPECT_NE(T.instr(2).str(&T.symbolNames()).find("store result"),
            std::string::npos);
  int S = T.emitOp(Opcode::Sel, A, A, A);
  (void)S;
  EXPECT_NE(T.instr(3).str().find("sel v0, v0, v0"), std::string::npos);
  (void)F;
  Instruction Sp(Opcode::SpillLoad);
  Sp.setDest(T.newVReg(Domain::Int));
  Sp.setSpillSlot(T.newSpillSlot());
  T.append(Sp);
  EXPECT_NE(T.instr(4).str().find("spld slot0"), std::string::npos);
}

TEST(Trace, SpillSlotAllocationIsSequential) {
  Trace T("t");
  EXPECT_EQ(T.newSpillSlot(), 0);
  EXPECT_EQ(T.newSpillSlot(), 1);
  EXPECT_EQ(T.numSpillSlots(), 2u);
}

TEST(Kernels, SuiteNamesAreUniqueAndNonEmpty) {
  auto Suite = kernelSuite();
  EXPECT_GE(Suite.size(), 8u);
  for (unsigned I = 0; I != Suite.size(); ++I) {
    EXPECT_FALSE(Suite[I].first.empty());
    EXPECT_GT(Suite[I].second.size(), 0u);
    for (unsigned J = I + 1; J != Suite.size(); ++J)
      EXPECT_NE(Suite[I].first, Suite[J].first);
  }
}

TEST(Parser, CommentsAndBlankLinesIgnoredEverywhere) {
  Trace T;
  std::string Err;
  ASSERT_TRUE(parseTrace("# leading comment\n"
                         "\n"
                         "a = ldi 1   # trailing\n"
                         "   \n"
                         "# done\n",
                         T, Err))
      << Err;
  EXPECT_EQ(T.size(), 1u);
}

TEST(Parser, NameMapExposesRegisters) {
  Trace T;
  std::string Err;
  std::map<std::string, int> Names;
  ASSERT_TRUE(parseTrace("foo = ldi 1\nbar = neg foo\n", T, Err, &Names));
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names.at("foo"), 0);
  EXPECT_EQ(Names.at("bar"), 1);
}
