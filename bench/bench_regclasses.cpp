//===- bench/bench_regclasses.cpp - X7: multiple resource classes ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X7 (paper Section 6 extension): one Reuse DAG per resource class. On
// mixed int/float kernels and a classed machine, report the per-class
// worst-case requirements before and after URSA, and the compiled
// outcome.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X7: per-class allocation on a classed machine "
              "(2 int + 2 float + 2 mem FUs, 8 GPR + 5 FPR)\n\n");
  MachineModel M = MachineModel::classed(2, 2, 2, 8, 5);

  Table Tbl({"workload", "resource", "limit", "before", "after", "fits"});
  std::vector<std::pair<std::string, Trace>> Work = {
      {"mixed4", mixedClassTrace(4)},
      {"butterfly2", butterflyTrace(2)},
      {"butterfly3", butterflyTrace(3)},
  };
  {
    GenOptions Opts;
    Opts.NumInstrs = 40;
    Opts.FloatFraction = 0.5;
    Opts.Seed = 21;
    Work.emplace_back("randfp", generateTrace(Opts));
  }

  for (auto &[Name, T] : Work) {
    DependenceDAG D0 = buildDAG(T);
    DAGAnalysis A(D0);
    HammockForest HF(D0, A);
    std::vector<Measurement> Before = measureAll(D0, A, HF, M);
    URSAResult R = runURSA(std::move(D0), M);
    auto Limits = machineResources(M);
    for (unsigned I = 0; I != Limits.size(); ++I)
      Tbl.addRow({Name, Limits[I].first.describe(),
                  Table::fmt(uint64_t(Limits[I].second)),
                  Table::fmt(uint64_t(Before[I].MaxRequired)),
                  Table::fmt(uint64_t(R.FinalRequired[I])),
                  R.FinalRequired[I] <= Limits[I].second ? "y" : "n"});
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape: classes are allocated independently (a "
              "float-heavy workload\nstresses fu(float)+reg(fpr) while its "
              "integer columns stay flat), and URSA\nbrings each class "
              "within its own limit.\n");
  return 0;
}
