//===- bench/bench_obs_overhead.cpp - Cost of telemetry instrumentation ---===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the observability layer costs: full URSA compilation of
// the standard corpus per mode —
//
//   stats off   every URSA_STAT/URSA_HISTO site is one predictable branch
//   stats on    counters + histograms enabled (the production default)
//   full obs    stats on, plus the per-request machinery the compile
//               service adds: a SpanCollector scope, latency histogram
//               records, and a flight-recorder append per compile
//   stats+trace stats on with Chrome span tracing buffering events
//
// The contract (docs/OBSERVABILITY.md): a disabled site costs a relaxed
// load, so "stats on" must sit within the clock's noise floor of "stats
// off" (gate: <= 2% + a small absolute slack); the full service-style
// instrumentation must stay under 5%. Each mode is timed min-of-N with
// the modes interleaved across trials so drift hits them all equally; a
// gate failure is the nonzero exit status (CI enforces it). Results land
// in BENCH_obs_overhead.json (URSA_BENCH_DIR honored).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Histogram.h"
#include "obs/Tracer.h"
#include "service/FlightRecorder.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

URSA_HISTO(BenchE2EUs, "ursa.bench.obs_e2e_us",
           "bench: per-compile latency recorded in full-obs mode");

namespace {

enum class Mode { Off, Stats, Full, Trace };

service::FlightRecorder Flight(256, 8);

double compileCorpusMs(const std::vector<std::pair<std::string, Trace>> &C,
                       const MachineModel &M, Mode Md, unsigned &OkOut) {
  auto Start = std::chrono::steady_clock::now();
  for (const auto &[Name, T] : C) {
    if (Md != Mode::Full) {
      OkOut += compileURSA(T, M).Compile.Ok;
      continue;
    }
    // Service-style per-request instrumentation, same as compileOne.
    obs::SpanCollector Coll(Name);
    obs::CollectorScope Scope(&Coll);
    auto S = std::chrono::steady_clock::now();
    OkOut += compileURSA(T, M).Compile.Ok;
    uint64_t Us = uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - S)
                               .count());
    BenchE2EUs.record(Us);
    service::RequestRecord Rec;
    Rec.Id = Name;
    Rec.TraceId = Name;
    Rec.Status = "ok";
    Rec.CompileMs = double(Us) / 1000.0;
    Rec.TotalMs = Rec.CompileMs;
    Rec.Spans.reserve(Coll.stages().size());
    for (const obs::SpanCollector::Stage &Sp : Coll.stages())
      Rec.Spans.push_back({Sp.Name, Sp.Cat, Sp.StartUs, Sp.DurUs});
    Flight.record(std::move(Rec));
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::printf("observability overhead: corpus compile time per mode\n\n");

  std::vector<std::pair<std::string, Trace>> Corpus = corpus(6);
  const std::pair<const char *, MachineModel> Machines[] = {
      {"4x8", MachineModel::homogeneous(4, 8)},
      {"2x4", MachineModel::homogeneous(2, 4)}};
  constexpr unsigned Trials = 7;
  constexpr double StatsGate = 1.02, FullGate = 1.05;
  // Small corpora make tiny absolute jitter look like a ratio; allow the
  // noise floor in milliseconds on top of the percentage gates.
  constexpr double AbsSlackMs = 20.0;

  double SumOff = 0, SumStats = 0, SumFull = 0, SumTrace = 0;
  Table Tbl({"machine", "mode", "compiles", "min ms", "ratio vs off"});
  for (const auto &[MName, M] : Machines) {
    // Warm-up pass so first-touch effects don't land on one mode.
    unsigned Warm = 0;
    obs::setStatsEnabled(true);
    compileCorpusMs(Corpus, M, Mode::Stats, Warm);

    double OffMs = 1e100, StatsMs = 1e100, FullMs = 1e100, TraceMs = 1e100;
    unsigned OkOff = 0, OkStats = 0, OkFull = 0, OkTrace = 0;
    for (unsigned Trial = 0; Trial != Trials; ++Trial) {
      unsigned Ok = 0;
      obs::setStatsEnabled(false);
      OffMs = std::min(OffMs, compileCorpusMs(Corpus, M, Mode::Off, Ok));
      OkOff = Ok;

      Ok = 0;
      obs::setStatsEnabled(true);
      StatsMs = std::min(StatsMs, compileCorpusMs(Corpus, M, Mode::Stats, Ok));
      OkStats = Ok;

      Ok = 0;
      FullMs = std::min(FullMs, compileCorpusMs(Corpus, M, Mode::Full, Ok));
      OkFull = Ok;

      Ok = 0;
      obs::startTrace("BENCH_obs_overhead_trace.json");
      TraceMs = std::min(TraceMs, compileCorpusMs(Corpus, M, Mode::Trace, Ok));
      obs::endTrace();
      OkTrace = Ok;
    }
    SumOff += OffMs;
    SumStats += StatsMs;
    SumFull += FullMs;
    SumTrace += TraceMs;

    auto Row = [&](const char *Mode, unsigned Ok, double Ms) {
      char Total[32], Ratio[32];
      std::snprintf(Total, sizeof(Total), "%.1f", Ms);
      std::snprintf(Ratio, sizeof(Ratio), "%.3fx",
                    OffMs > 0 ? Ms / OffMs : 1.0);
      Tbl.addRow({MName, Mode, std::to_string(Ok), Total, Ratio});
    };
    Row("stats off", OkOff, OffMs);
    Row("stats on", OkStats, StatsMs);
    Row("full obs", OkFull, FullMs);
    Row("stats+trace", OkTrace, TraceMs);
  }
  Tbl.print(std::cout);
  std::remove("BENCH_obs_overhead_trace.json");

  double StatsRatio = SumOff > 0 ? SumStats / SumOff : 1.0;
  double FullRatio = SumOff > 0 ? SumFull / SumOff : 1.0;
  bool StatsOk =
      SumStats <= SumOff * StatsGate + AbsSlackMs;
  bool FullOk = SumFull <= SumOff * FullGate + AbsSlackMs;
  std::printf("\nstats-on ratio %.3fx (gate %.2fx)  %s\n", StatsRatio,
              StatsGate, StatsOk ? "ok" : "FAIL");
  std::printf("full-obs ratio %.3fx (gate %.2fx)  %s\n", FullRatio, FullGate,
              FullOk ? "ok" : "FAIL");

  writeBenchArtifact("obs_overhead", [&](obs::JsonWriter &W) {
    W.beginObject();
    W.kv("off_ms", SumOff);
    W.kv("stats_ms", SumStats);
    W.kv("full_ms", SumFull);
    W.kv("trace_ms", SumTrace);
    W.kv("stats_ratio", StatsRatio);
    W.kv("full_ratio", FullRatio);
    W.kv("stats_gate", StatsGate);
    W.kv("full_gate", FullGate);
    W.kv("gates_ok", StatsOk && FullOk);
    W.endObject();
  });
  return StatsOk && FullOk ? 0 : 1;
}
