//===- bench/bench_obs_overhead.cpp - Cost of telemetry instrumentation ---===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the observability layer costs: full URSA compilation of
// the standard corpus with stats counters on (the default), off, and with
// span tracing active. The contract (docs/OBSERVABILITY.md) is that a
// disabled site is one relaxed atomic load, so the stats-off ratio should
// sit within the clock's noise floor of 1.00x; tracing buffers events in
// memory and may cost a few percent.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Tracer.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

namespace {

double compileCorpusMs(const std::vector<std::pair<std::string, Trace>> &C,
                       const MachineModel &M, unsigned Reps,
                       unsigned &OkOut) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep != Reps; ++Rep)
    for (const auto &[Name, T] : C)
      OkOut += compileURSA(T, M).Compile.Ok;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::printf("observability overhead: corpus compile time per mode\n\n");

  std::vector<std::pair<std::string, Trace>> Corpus = corpus(6);
  const std::pair<const char *, MachineModel> Machines[] = {
      {"4x8", MachineModel::homogeneous(4, 8)},
      {"2x4", MachineModel::homogeneous(2, 4)}};
  constexpr unsigned Reps = 5;

  Table Tbl({"machine", "mode", "compiles", "total ms", "ratio vs off"});
  for (const auto &[MName, M] : Machines) {
    // Warm-up pass so first-touch effects don't land on one mode.
    unsigned Warm = 0;
    compileCorpusMs(Corpus, M, 1, Warm);

    obs::setStatsEnabled(false);
    unsigned OkOff = 0;
    double OffMs = compileCorpusMs(Corpus, M, Reps, OkOff);

    obs::setStatsEnabled(true);
    unsigned OkOn = 0;
    double OnMs = compileCorpusMs(Corpus, M, Reps, OkOn);

    obs::startTrace("BENCH_obs_overhead_trace.json");
    unsigned OkTr = 0;
    double TraceMs = compileCorpusMs(Corpus, M, Reps, OkTr);
    obs::endTrace();

    auto Row = [&](const char *Mode, unsigned Ok, double Ms) {
      char Total[32], Ratio[32];
      std::snprintf(Total, sizeof(Total), "%.1f", Ms);
      std::snprintf(Ratio, sizeof(Ratio), "%.2fx",
                    OffMs > 0 ? Ms / OffMs : 1.0);
      Tbl.addRow({MName, Mode, std::to_string(Ok), Total, Ratio});
    };
    Row("stats off", OkOff, OffMs);
    Row("stats on", OkOn, OnMs);
    Row("stats+trace", OkTr, TraceMs);
  }
  Tbl.print(std::cout);
  std::remove("BENCH_obs_overhead_trace.json");
  return 0;
}
