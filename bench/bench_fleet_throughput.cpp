//===- bench/bench_fleet_throughput.cpp - Router + N backends -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet acceptance harness: real sockets, a real RouterService, and
// N in-process ursa_served-equivalent backends, exercised by a threaded
// batch client over a measurement-bound corpus (wide traces on an ample
// machine — the tier where the per-shard MeasurementCache dominates).
//
// Three gates, each reflected in the exit code and the JSON artifact:
//
//  1. scaling    — batch throughput through a router over 3 backends vs
//                  one directly-attached backend (1 compile worker each).
//                  Gate: >= 2.0x with >= 4 hardware threads, >= 1.3x
//                  with 2-3, reported-but-waived on a single core (the
//                  backends are in-process; one core cannot scale).
//  2. affinity   — warm-hit rate after a 2 -> 3 backend resize. The
//                  consistent-hash ring remaps ~1/3 of keys, so one
//                  re-warm pass later the fleet's hit rate must be back
//                  within 10 points of the single-server warm rate
//                  (naive modulo sharding would re-cold the world).
//  3. kill       — a backend dies mid-batch; with clients resubmitting
//                  on busy_retry_later every function still completes
//                  byte-identical to the reference outputs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fleet/RouterService.h"
#include "service/Client.h"
#include "service/CompileService.h"
#include "service/Server.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::bench;
using namespace ursa::fleet;
using namespace ursa::service;

namespace {

/// A backend server on an ephemeral TCP port.
struct BackendServer {
  Server Srv;
  std::thread Runner;
  std::string Endpoint;

  explicit BackendServer(const ServiceConfig &Cfg) : Srv("tcp:0", Cfg) {
    if (Status St = Srv.start(); !St.isOk()) {
      std::fprintf(stderr, "backend start failed: %s\n", St.str().c_str());
      std::exit(2);
    }
    Endpoint = "tcp:" + std::to_string(Srv.port());
    Runner = std::thread([this] { Srv.run(); });
  }
  ~BackendServer() {
    Srv.requestStop();
    Runner.join();
  }
};

/// A started router fronted by its own TCP server.
struct RouterFront {
  RouterService Router;
  Server Srv;
  std::thread Runner;
  std::string Endpoint;

  explicit RouterFront(const RouterConfig &Cfg)
      : Router(Cfg), Srv("tcp:0", Router, TransportOpts{}) {
    if (Status St = Router.start(); !St.isOk()) {
      std::fprintf(stderr, "router start failed: %s\n", St.str().c_str());
      std::exit(2);
    }
    if (Status St = Srv.start(); !St.isOk()) {
      std::fprintf(stderr, "router server start failed: %s\n",
                   St.str().c_str());
      std::exit(2);
    }
    Endpoint = "tcp:" + std::to_string(Srv.port());
    Runner = std::thread([this] { Srv.run(); });
  }
  ~RouterFront() {
    Srv.requestStop();
    Runner.join();
    Router.stop(false);
  }
};

ServiceConfig backendConfig() {
  ServiceConfig Cfg;
  Cfg.Workers = 1; // one compile lane per backend: scaling = fleet width
  Cfg.CacheSize = 4096;
  return Cfg;
}

std::vector<std::string> makeCorpus(unsigned N, uint64_t SeedBase) {
  std::vector<std::string> Out;
  for (unsigned I = 0; I != N; ++I) {
    GenOptions G;
    G.NumInstrs = 120;
    G.Window = 32;
    G.Seed = SeedBase + I;
    Out.push_back(generateTrace(G).str());
  }
  return Out;
}

MachineSpec ampleMachine() {
  MachineSpec M;
  M.Fus = 4;
  M.Regs = 64;
  return M;
}

struct BatchResult {
  double WallMs = 0;
  std::vector<std::string> Texts;
  unsigned Failures = 0;
  unsigned BusyRetries = 0;
  unsigned Reconnects = 0;
};

/// Drives the whole corpus through \p Endpoint with \p Threads client
/// connections. A busy_retry_later answer resubmits after a short pause
/// (the fleet contract: Busy is a momentary condition, not client
/// fault); a transport error reconnects and resubmits — the client-side
/// resubmission is exactly what the at-most-once rules permit.
BatchResult runBatch(const std::string &Endpoint,
                     const std::vector<std::string> &Corpus, unsigned Threads,
                     const char *Tag,
                     std::atomic<unsigned> *Progress = nullptr,
                     unsigned StallMs = 0,
                     const MachineSpec *MachineOverride = nullptr) {
  BatchResult R;
  R.Texts.resize(Corpus.size());
  std::atomic<size_t> NextIdx{0};
  std::atomic<unsigned> Failures{0}, Busy{0}, Reconnects{0};
  MachineSpec Machine = MachineOverride ? *MachineOverride : ampleMachine();

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      std::unique_ptr<ServiceClient> Conn;
      for (;;) {
        size_t I = NextIdx.fetch_add(1);
        if (I >= Corpus.size())
          return;
        ServiceRequest Req;
        Req.Op = ServiceRequest::OpKind::Compile;
        Req.Id = std::string(Tag) + "-" + std::to_string(I);
        Req.Source = Corpus[I];
        Req.Machine = Machine;
        Req.Client = "bench-" + std::to_string(T);
        Req.StallMs = StallMs;

        bool Done = false;
        for (unsigned Attempt = 0; Attempt != 200 && !Done; ++Attempt) {
          if (!Conn) {
            StatusOr<ServiceClient> COr = ServiceClient::connect(Endpoint);
            if (!COr.isOk()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
              continue;
            }
            Conn = std::make_unique<ServiceClient>(std::move(*COr));
          }
          ServiceResponse Resp;
          if (Status St = Conn->call(Req, Resp); !St.isOk()) {
            Conn.reset();
            ++Reconnects;
            continue;
          }
          if (Resp.Status == ServiceResponse::StatusKind::Busy) {
            ++Busy;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          if (Resp.Status == ServiceResponse::StatusKind::Ok)
            R.Texts[I] = Resp.Text;
          else
            ++Failures;
          Done = true;
        }
        if (!Done)
          ++Failures;
        if (Progress)
          Progress->fetch_add(1);
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  R.Failures = Failures;
  R.BusyRetries = Busy;
  R.Reconnects = Reconnects;
  return R;
}

uint64_t statValue(const char *Name) {
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/false))
    if (SV.Name == Name)
      return SV.Value;
  return 0;
}

/// Measurement-cache hit rate over the stats-counter delta of \p Run.
/// Backends are in-process, so the process-global counters sum the whole
/// fleet — which is exactly the fleet-wide rate we want.
template <typename Fn> double hitRateOver(Fn Run) {
  uint64_t H0 = statValue("ursa.driver.measure_cache.hits");
  uint64_t M0 = statValue("ursa.driver.measure_cache.misses");
  Run();
  uint64_t H = statValue("ursa.driver.measure_cache.hits") - H0;
  uint64_t M = statValue("ursa.driver.measure_cache.misses") - M0;
  return H + M ? double(H) / double(H + M) : 0.0;
}

RouterConfig routerOver(const std::vector<BackendServer *> &Backends) {
  RouterConfig RC;
  for (size_t I = 0; I != Backends.size(); ++I)
    RC.Backends.push_back({Backends[I]->Endpoint, "b" + std::to_string(I)});
  RC.Workers = 4;
  RC.ProbeIntervalMs = 100;
  RC.FailThreshold = 2;
  return RC;
}

} // namespace

int main() {
  obs::setStatsEnabled(true);
  const unsigned N = 24;
  const unsigned Threads = 8;
  const unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::string> Corpus = makeCorpus(N, 4000);

  std::printf("fleet throughput: router + backends over TCP, %u functions, "
              "%u client threads, %u hardware threads\n\n",
              N, Threads, Hw);

  //===--------------------------------------------------------------------===//
  // Gate 1: scaling. One backend direct, then three behind a router.
  //===--------------------------------------------------------------------===//

  BatchResult Single, Fleet3;
  double SingleWarmRate = 0;
  {
    BackendServer B(backendConfig());
    Single = runBatch(B.Endpoint, Corpus, Threads, "single");
    // The warm pass doubles as the affinity gate's baseline hit rate.
    SingleWarmRate = hitRateOver(
        [&] { runBatch(B.Endpoint, Corpus, Threads, "single-warm"); });
  }
  {
    std::vector<std::unique_ptr<BackendServer>> Bs;
    for (int I = 0; I != 3; ++I)
      Bs.push_back(std::make_unique<BackendServer>(backendConfig()));
    RouterFront Front(routerOver({Bs[0].get(), Bs[1].get(), Bs[2].get()}));
    Fleet3 = runBatch(Front.Endpoint, Corpus, Threads, "fleet3");
  }
  double Speedup = Single.WallMs / std::max(1.0, Fleet3.WallMs);
  double SpeedupBar = Hw >= 4 ? 2.0 : 1.3;
  bool ScalingWaived = Hw < 2;
  bool ScalingOk = ScalingWaived || Speedup >= SpeedupBar;
  if (ScalingWaived)
    std::fprintf(stderr, "note: single hardware thread — scaling gate "
                         "reported but waived (in-process backends cannot "
                         "scale without cores)\n");

  //===--------------------------------------------------------------------===//
  // Gate 2: shard affinity across a 2 -> 3 resize.
  //===--------------------------------------------------------------------===//

  double PostResizeRate = 0, RewarmedRate = 0;
  {
    std::vector<std::unique_ptr<BackendServer>> Bs;
    for (int I = 0; I != 3; ++I)
      Bs.push_back(std::make_unique<BackendServer>(backendConfig()));
    {
      RouterFront Two(routerOver({Bs[0].get(), Bs[1].get()}));
      runBatch(Two.Endpoint, Corpus, Threads, "resize-warmup");
    }
    // Same backends, same shard names, one more ring member: only the
    // arcs b2's points claim move.
    RouterFront Three(routerOver({Bs[0].get(), Bs[1].get(), Bs[2].get()}));
    PostResizeRate = hitRateOver(
        [&] { runBatch(Three.Endpoint, Corpus, Threads, "resize-first"); });
    RewarmedRate = hitRateOver(
        [&] { runBatch(Three.Endpoint, Corpus, Threads, "resize-second"); });
  }
  bool AffinityOk = std::fabs(RewarmedRate - SingleWarmRate) <= 0.10;

  //===--------------------------------------------------------------------===//
  // Gate 3: byte-identical completion across a mid-batch backend kill.
  //===--------------------------------------------------------------------===//

  // A register-tight machine forces real allocation rounds, which the
  // StallMs test hook stretches (without changing output) so the kill
  // reliably lands while requests are in flight.
  MachineSpec Tight;
  Tight.Fus = 2;
  Tight.Regs = 16;
  BatchResult KillRef, KillRun;
  {
    BackendServer Ref(backendConfig());
    KillRef = runBatch(Ref.Endpoint, Corpus, Threads, "kill-ref", nullptr, 0,
                       &Tight);
  }
  {
    ServiceConfig Cfg = backendConfig();
    Cfg.EnableTestHooks = true;
    std::vector<std::unique_ptr<BackendServer>> Bs;
    for (int I = 0; I != 3; ++I)
      Bs.push_back(std::make_unique<BackendServer>(Cfg));
    RouterFront Front(routerOver({Bs[0].get(), Bs[1].get(), Bs[2].get()}));

    std::atomic<unsigned> Completed{0};
    std::thread Killer([&] {
      while (Completed.load() < N / 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      Bs[1].reset(); // take a backend down mid-batch
    });
    KillRun = runBatch(Front.Endpoint, Corpus, Threads, "kill", &Completed,
                       /*StallMs=*/5, &Tight);
    Killer.join();
  }
  unsigned KillMismatches = 0;
  for (unsigned I = 0; I != N; ++I)
    if (KillRun.Texts[I] != KillRef.Texts[I])
      ++KillMismatches;
  bool KillOk = KillMismatches == 0 && KillRun.Failures == 0 &&
                KillRef.Failures == 0;

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  Table Tbl({"phase", "wall ms", "funcs/s", "busy", "reconnects", "failures"});
  auto Row = [&](const char *Phase, const BatchResult &B) {
    Tbl.addRow({Phase, Table::fmt(B.WallMs, 1),
                Table::fmt(1000.0 * N / std::max(1.0, B.WallMs), 1),
                Table::fmt(uint64_t(B.BusyRetries)),
                Table::fmt(uint64_t(B.Reconnects)),
                Table::fmt(uint64_t(B.Failures))});
  };
  Row("single backend", Single);
  Row("router + 3 backends", Fleet3);
  Row("kill mid-batch", KillRun);
  Tbl.print(std::cout);

  std::printf("\nscaling:  %.2fx vs single (gate >= %.1fx%s)\n", Speedup,
              SpeedupBar, ScalingWaived ? ", waived: 1 hw thread" : "");
  std::printf("affinity: warm hit rate %.1f%% single, %.1f%% right after "
              "2->3 resize, %.1f%% re-warmed (gate: within 10 points of "
              "single)\n",
              100 * SingleWarmRate, 100 * PostResizeRate, 100 * RewarmedRate);
  std::printf("kill:     %u/%u byte-identical, %u failures "
              "(gate: all identical, none failed)\n",
              N - KillMismatches, N, KillRun.Failures);

  std::string Artifact =
      writeBenchArtifact("fleet_throughput", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("functions", uint64_t(N));
        W.kv("client_threads", uint64_t(Threads));
        W.kv("hardware_threads", uint64_t(Hw));
        W.kv("single_wall_ms", Single.WallMs);
        W.kv("fleet3_wall_ms", Fleet3.WallMs);
        W.kv("speedup", Speedup);
        W.kv("speedup_gate", SpeedupBar);
        W.kv("scaling_waived", ScalingWaived);
        W.kv("scaling_ok", ScalingOk);
        W.kv("single_warm_hit_rate", SingleWarmRate);
        W.kv("post_resize_hit_rate", PostResizeRate);
        W.kv("rewarmed_hit_rate", RewarmedRate);
        W.kv("affinity_ok", AffinityOk);
        W.kv("kill_wall_ms", KillRun.WallMs);
        W.kv("kill_busy_retries", uint64_t(KillRun.BusyRetries));
        W.kv("kill_reconnects", uint64_t(KillRun.Reconnects));
        W.kv("kill_mismatches", uint64_t(KillMismatches));
        W.kv("kill_failures", uint64_t(KillRun.Failures));
        W.kv("kill_ok", KillOk);
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return ScalingOk && AffinityOk && KillOk ? 0 : 1;
}
