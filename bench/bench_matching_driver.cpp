//===- bench/bench_matching_driver.cpp - X12: matching inside URSA ---------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X12 (paper Section 3.1, driver-level): the hammock-priority matching
// exists so excessive chain sets localize to small regions. Ablate it
// inside the full driver — same workloads, same machine, prioritized vs
// plain matching — and compare the transformation effort and outcome.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X12: hammock-priority matching ablation inside the driver "
              "(machine 3fu/5r)\n\n");
  MachineModel M = MachineModel::homogeneous(3, 5);
  Table Tbl({"workload", "prioritized (cyc|spill|rounds)",
             "plain (cyc|spill|rounds)"});
  struct Agg {
    std::vector<double> Cycles;
    unsigned Spills = 0, Rounds = 0;
  } P, Q;
  for (auto &[Name, T] : corpus()) {
    std::vector<std::string> Row{Name};
    for (bool Prioritized : {true, false}) {
      URSAOptions UO;
      UO.Measure.PrioritizedMatching = Prioritized;
      URSACompileResult R = compileURSA(T, M, UO);
      if (!R.Compile.Ok) {
        Row.push_back("fail");
        continue;
      }
      Agg &A = Prioritized ? P : Q;
      A.Cycles.push_back(double(R.Compile.Cycles));
      A.Spills += R.Compile.SpillOps;
      A.Rounds += R.AllocRounds;
      Row.push_back(Table::fmt(uint64_t(R.Compile.Cycles)) + " | " +
                    Table::fmt(uint64_t(R.Compile.SpillOps)) + " | " +
                    Table::fmt(uint64_t(R.AllocRounds)));
    }
    Tbl.addRow(Row);
  }
  Tbl.addRow({"geomean / totals",
              Table::fmt(geomean(P.Cycles), 1) + " | " +
                  Table::fmt(uint64_t(P.Spills)) + " | " +
                  Table::fmt(uint64_t(P.Rounds)),
              Table::fmt(geomean(Q.Cycles), 1) + " | " +
                  Table::fmt(uint64_t(Q.Spills)) + " | " +
                  Table::fmt(uint64_t(Q.Rounds))});
  Tbl.print(std::cout);
  std::printf("\nExpected shape: both reach the same requirements (Theorem 1 "
              "holds either\nway); the prioritized variant should need no "
              "more driver rounds because its\nchains project minimally onto "
              "the hammocks the transforms operate in.\n");
  return 0;
}
