//===- bench/bench_phase_ordering.cpp - X1: phase orderings compared -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X1 (paper claim C6): compare the three classic phase orderings against
// URSA over the corpus and a machine sweep. Per machine we report, for
// each pipeline, the geometric-mean schedule length relative to URSA
// (>1 means slower than URSA) and the total spill operations emitted.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <iostream>
#include <map>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X1: schedule length (geomean, relative to URSA = 1.00) and "
              "total spill ops\n\n");
  auto Corpus = corpus();
  Table Tbl({"machine", "prepass", "postpass", "integrated", "ursa"});
  for (auto [Fus, Regs] : {std::pair<unsigned, unsigned>{2, 4},
                           {2, 8},
                           {4, 4},
                           {4, 8},
                           {4, 16},
                           {8, 16}}) {
    MachineModel M = MachineModel::homogeneous(Fus, Regs);
    std::map<std::string, std::vector<double>> RelCycles;
    std::map<std::string, unsigned> Spills;
    for (auto &[Name, T] : Corpus) {
      (void)Name;
      std::map<std::string, CompileResult> Rs;
      for (const std::string &P : pipelineNames())
        Rs.emplace(P, compileBy(P, T, M));
      const CompileResult &U = Rs.at("ursa");
      if (!U.Ok)
        continue;
      for (const std::string &P : pipelineNames()) {
        const CompileResult &R = Rs.at(P);
        if (!R.Ok)
          continue;
        RelCycles[P].push_back(double(R.Cycles) / double(U.Cycles));
        Spills[P] += R.SpillOps;
      }
    }
    std::vector<std::string> Row{M.describe()};
    for (const std::string &P : pipelineNames())
      Row.push_back(Table::fmt(geomean(RelCycles[P]), 2) + " | " +
                    Table::fmt(uint64_t(Spills[P])));
    Tbl.addRow(Row);
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape (paper Section 1): prepass and postpass both "
              "degrade relative to\nURSA — prepass through spill traffic "
              "inherited from a register-oblivious\nschedule, postpass "
              "through reuse-edge serialization; the pressure-aware\n"
              "integrated scheduler trades spills for cycles.\n");
  return 0;
}
