//===- bench/bench_software_pipelining.cpp - X8: unroll + URSA -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X8 (paper Section 6 extension): loop unrolling plus URSA as resource-
// constrained software pipelining. For two loop bodies and two machines,
// report cycles per original iteration over the unroll factor.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X8: unroll + URSA — cycles per original iteration "
              "(spill ops in parens)\n\n");
  Table Tbl({"loop", "machine", "u=1", "u=2", "u=4", "u=8"});
  struct Loop {
    const char *Name;
    Trace (*Make)(unsigned);
  };
  for (Loop L : {Loop{"hydro", hydroTrace}, Loop{"dot", dotProductTrace},
                 Loop{"stencil", stencilTrace}}) {
    for (auto [Fus, Regs] :
         {std::pair<unsigned, unsigned>{2, 8}, {4, 12}}) {
      MachineModel M = MachineModel::homogeneous(Fus, Regs);
      std::vector<std::string> Row{L.Name, M.describe()};
      for (unsigned U : {1u, 2u, 4u, 8u}) {
        URSACompileResult R = compileURSA(L.Make(U), M);
        if (!R.Compile.Ok) {
          Row.push_back("fail");
          continue;
        }
        Row.push_back(Table::fmt(double(R.Compile.Cycles) / U, 2) + " (" +
                      Table::fmt(uint64_t(R.Compile.SpillOps)) + ")");
      }
      Tbl.addRow(Row);
    }
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape: cycles/iteration falls from u=1 to the "
              "modest unroll factors\nas URSA overlaps iterations, then "
              "flattens (or pays spills) once the register\nfile, not the "
              "dependence structure, is the binding resource.\n");
  return 0;
}
