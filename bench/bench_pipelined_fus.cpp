//===- bench/bench_pipelined_fus.cpp - X11: interlock extension ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X11 (paper Section 6): "Extensions to handle the problems caused by
// interlocks in pipelines are also being developed, so that superscalar
// architectures can be targeted." Same allocation machinery, pipelined
// units (initiation interval 1, full result latency): compare URSA's
// schedules on the non-pipelined base machine against the pipelined one,
// with latencies int=1 float=4 mem=2.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/Interpreter.h"
#include "vliw/Simulator.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X11: non-pipelined vs pipelined functional units "
              "(URSA cycles; latencies 1/4/2)\n\n");
  Table Tbl({"workload", "machine", "non-pipelined", "pipelined", "speedup"});
  std::vector<std::pair<std::string, Trace>> Work = {
      {"butterfly2", butterflyTrace(2)},
      {"butterfly3", butterflyTrace(3)},
      {"mixed4", mixedClassTrace(4)},
      {"dot8", dotProductTrace(8)},
      {"horner8", hornerTrace(8)},
      {"stencil8", stencilTrace(8)},
  };
  std::vector<double> Speedups;
  for (auto &[Name, T] : Work) {
    for (bool Classed : {false, true}) {
      MachineModel Base =
          Classed ? MachineModel::classed(2, 1, 2, 12, 12)
                  : MachineModel::homogeneous(4, 12);
      MachineModel NonPiped = Base;
      NonPiped.withLatencies(1, 4, 2);
      MachineModel Piped = Base;
      Piped.withLatencies(1, 4, 2).withPipelinedFUs();

      URSACompileResult A = compileURSA(T, NonPiped);
      URSACompileResult B = compileURSA(T, Piped);
      if (!A.Compile.Ok || !B.Compile.Ok) {
        Tbl.addRow({Name, Base.describe(), "fail", "fail", "-"});
        continue;
      }
      // Both must still be correct.
      RNG Rng(99);
      MemoryState In = randomInputs(T, Rng);
      ExecResult Want = interpret(T, In);
      SimResult SA = simulate(*A.Compile.Prog, In);
      SimResult SB = simulate(*B.Compile.Prog, In);
      bool Correct = SA.Ok && SB.Ok && SA.Exec == Want && SB.Exec == Want;
      double Speedup = double(A.Compile.Cycles) / double(B.Compile.Cycles);
      Speedups.push_back(Speedup);
      Tbl.addRow({Name, Base.describe(),
                  Table::fmt(uint64_t(A.Compile.Cycles)),
                  Table::fmt(uint64_t(B.Compile.Cycles)),
                  Correct ? Table::fmt(Speedup, 2) + "x" : "WRONG"});
    }
  }
  Tbl.print(std::cout);
  std::printf("\nGeomean speedup from pipelining: %.2fx\n",
              geomean(Speedups));
  std::printf("Expected shape: speedups concentrate where long-latency "
              "units saturate\n(float-heavy kernels on one float unit); "
              "latency-bound chains (horner) gain\nlittle because results, "
              "not issue slots, are the wait.\n");
  return 0;
}
