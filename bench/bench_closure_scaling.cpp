//===- bench/bench_closure_scaling.cpp - Closure memory-wall gates --------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The closure memory wall: a dense N x N reachability pair costs
// 2 * N^2 / 8 bytes — 625 MB at 50k nodes, 2.5 GB at 100k — which made
// the dense-era measurement pipeline top out around 10k-node traces. The
// blocked/tiled representation plus the separator-segmented build should
// collapse that to roughly the tile-summary grid (N^2 / 1024 bytes) plus
// the mixed tiles along each segment's boundary diagonal.
//
// Three exit-code-enforced gates:
//  1. correctness: --closure dense, blocked, and auto produce identical
//     driver results on the standard corpus (widths, rounds, round log);
//  2. memory: after measuring + one driver round on the 50k-node block
//     trace under the blocked representation, process peak RSS stays
//     below 25% of the *dense closure extrapolation alone* (625 MB / 4
//     = 156 MB) — the whole process must be leaner than a quarter of
//     what just the dense matrices would have cost;
//  3. scale: the 100k-node trace completes measurement plus one driver
//     round (the dense-era OOM case) within a generous wall-clock bound.
//
// The synthetic generator builds block-structured traces (B blocks of W
// parallel chains of length L, chain-major emission, a join comb per
// block) whose block boundaries are separators — the structure the
// segmented build exploits, and the shape real scheduling traces have.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/Closure.h"
#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sys/resource.h>

using namespace ursa;
using namespace ursa::bench;

namespace {

/// B blocks x W parallel chains x length L, chain-major emission. Every
/// chain of a block starts from the previous block's join value and the
/// block ends in a join comb over the chain tails, so each block boundary
/// is a separator (no dependence jumps across it).
Trace blockTrace(unsigned Blocks, unsigned Width, unsigned Len) {
  Trace T("block_trace");
  int Join = T.emitLoadImm(1);
  for (unsigned B = 0; B != Blocks; ++B) {
    std::vector<int> Tails;
    Tails.reserve(Width);
    for (unsigned W = 0; W != Width; ++W) {
      int V = Join;
      for (unsigned I = 0; I != Len; ++I)
        V = T.emitOp(Opcode::Add, V, V);
      Tails.push_back(V);
    }
    int J = Tails[0];
    for (unsigned W = 1; W != Width; ++W)
      J = T.emitOp(Opcode::Xor, J, Tails[W]);
    Join = J;
  }
  T.emitStore("out", Join);
  return T;
}

/// Current process peak RSS in bytes (Linux: ru_maxrss is in KB).
size_t peakRSSBytes() {
  struct rusage RU;
  getrusage(RUSAGE_SELF, &RU);
  return size_t(RU.ru_maxrss) * 1024;
}

struct TierResult {
  std::string Name;
  unsigned Nodes = 0;
  double MeasureMs = 0;
  double RoundMs = 0;
  unsigned Rounds = 0;
  std::string Rep;
  size_t ClosureBytes = 0;
  double BytesPerNode = 0;
  size_t PeakRSS = 0;
};

/// Measures + runs one driver round on \p T under the current closure
/// policy. MaxRounds=1 keeps it to the round the gate asks for.
TierResult runTier(const std::string &Name, const Trace &T,
                   const MachineModel &M) {
  TierResult R;
  R.Name = Name;
  DependenceDAG D = buildDAG(T);
  R.Nodes = D.size();
  std::fprintf(stderr, "[tier %s] %u nodes: building closure...\n",
               Name.c_str(), D.size());

  auto T0 = std::chrono::steady_clock::now();
  DAGAnalysis A(D); // the measurement-phase closure build
  auto T1 = std::chrono::steady_clock::now();
  R.MeasureMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  R.Rep = closureRepName(A.closureRep());
  R.ClosureBytes = A.closureMemoryBytes();
  R.BytesPerNode = double(R.ClosureBytes) / double(D.size());

  std::fprintf(stderr, "[tier %s] closure %s, %.1f MB, %.0f ms; driver round...\n",
               Name.c_str(), R.Rep.c_str(),
               double(R.ClosureBytes) / (1024.0 * 1024.0), R.MeasureMs);
  URSAOptions O;
  O.Threads = 1;
  O.MaxRounds = 1;
  O.MaxTotalRounds = 1;
  auto T2 = std::chrono::steady_clock::now();
  URSAResult UR = runURSA(D, M, O);
  auto T3 = std::chrono::steady_clock::now();
  R.RoundMs = std::chrono::duration<double, std::milli>(T3 - T2).count();
  R.Rounds = UR.Rounds;
  R.PeakRSS = peakRSSBytes();
  std::fprintf(stderr, "[tier %s] round done: %.0f ms, %u rounds\n",
               Name.c_str(), R.RoundMs, R.Rounds);
  return R;
}

bool sameOutcome(const URSAResult &A, const URSAResult &B) {
  if (A.FinalRequired != B.FinalRequired ||
      A.WithinLimits != B.WithinLimits || A.Rounds != B.Rounds ||
      A.SeqEdgesAdded != B.SeqEdgesAdded ||
      A.SpillsInserted != B.SpillsInserted ||
      A.RoundLog.size() != B.RoundLog.size())
    return false;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I) {
    const RoundRecord &X = A.RoundLog[I], &Y = B.RoundLog[I];
    if (X.Kind != Y.Kind || X.Resource != Y.Resource ||
        X.Detail != Y.Detail || X.ExcessBefore != Y.ExcessBefore ||
        X.ExcessAfter != Y.ExcessAfter || X.EdgesAdded != Y.EdgesAdded ||
        X.SpillsInserted != Y.SpillsInserted)
      return false;
  }
  return true;
}

} // namespace

int main() {
  std::printf("closure memory-wall scaling: blocked vs dense\n\n");

  // Gate 1: representation is invisible on the standard corpus.
  bool CorpusIdentical = true;
  std::fprintf(stderr, "[corpus] dense/auto/blocked differential...\n");
  {
    MachineModel M = MachineModel::homogeneous(2, 4);
    for (const auto &[Name, T] : corpus()) {
      DependenceDAG D = buildDAG(T);
      URSAOptions O;
      O.Threads = 1;
      setClosureMode(ClosureMode::Dense);
      URSAResult Dense = runURSA(D, M, O);
      setClosureMode(ClosureMode::Auto);
      URSAResult Auto = runURSA(D, M, O);
      setClosureMode(ClosureMode::Blocked);
      URSAResult Blocked = runURSA(D, M, O);
      setClosureMode(ClosureMode::Auto);
      if (!sameOutcome(Dense, Auto) || !sameOutcome(Dense, Blocked)) {
        CorpusIdentical = false;
        std::fprintf(stderr, "DIVERGENCE: closure reps differ on %s\n",
                     Name.c_str());
      }
    }
  }

  // Scaling tiers under the default auto policy: 1k stays dense (below
  // the threshold), the rest go blocked. Ordering matters for the RSS
  // gate — the 50k tier runs before 100k so its peak-RSS reading is not
  // polluted by the larger tier.
  struct TierSpec {
    const char *Name;
    unsigned Blocks, Width, Len;
  };
  const TierSpec Specs[] = {
      {"1k", 4, 16, 15},
      {"10k", 10, 32, 31},
      {"50k", 48, 32, 32},
      {"100k", 97, 32, 32},
  };
  MachineModel M = MachineModel::homogeneous(16, 64);

  std::vector<TierResult> Tiers;
  size_t RSSAfter50k = 0;
  double Ms100k = 0;
  for (const TierSpec &S : Specs) {
    Trace T = blockTrace(S.Blocks, S.Width, S.Len);
    TierResult R = runTier(S.Name, T, M);
    if (R.Name == "50k")
      RSSAfter50k = R.PeakRSS;
    if (R.Name == "100k")
      Ms100k = R.MeasureMs + R.RoundMs;
    Tiers.push_back(std::move(R));
  }

  Table Tbl({"tier", "nodes", "rep", "closure MB", "bytes/node",
             "measure ms", "round ms", "peak RSS MB"});
  for (const TierResult &R : Tiers)
    Tbl.addRow({R.Name, Table::fmt(uint64_t(R.Nodes)), R.Rep,
                Table::fmt(double(R.ClosureBytes) / (1024.0 * 1024.0), 1),
                Table::fmt(R.BytesPerNode, 1), Table::fmt(R.MeasureMs, 1),
                Table::fmt(R.RoundMs, 1),
                Table::fmt(double(R.PeakRSS) / (1024.0 * 1024.0), 1)});
  Tbl.print(std::cout);

  // Gate 2: 25% of what the dense closures ALONE would cost at 50k.
  const unsigned N50k = Tiers[2].Nodes;
  const double DenseBytes50k = 2.0 * double(N50k) * double(N50k) / 8.0;
  const double RSSGate = DenseBytes50k * 0.25;
  bool RSSOk = double(RSSAfter50k) <= RSSGate;

  // Gate 3: the 100k tier completed (we got here without OOM) within a
  // generous wall bound — it catches accidental O(N^2) work, not noise.
  bool Completed100k = Tiers[3].Nodes > 100000 && Tiers[3].Rounds >= 1;
  bool WallOk = Ms100k <= 300000.0;

  std::printf("\ncorpus dense/blocked/auto: %s\n",
              CorpusIdentical ? "identical" : "DIVERGED (bug!)");
  std::printf("50k peak RSS %.1f MB vs gate %.1f MB (25%% of %.0f MB dense "
              "extrapolation): %s\n",
              double(RSSAfter50k) / (1024.0 * 1024.0),
              RSSGate / (1024.0 * 1024.0),
              DenseBytes50k / (1024.0 * 1024.0), RSSOk ? "ok" : "FAIL");
  std::printf("100k tier: %u nodes, %u round(s), %.1f s total: %s\n",
              Tiers[3].Nodes, Tiers[3].Rounds, Ms100k / 1000.0,
              Completed100k && WallOk ? "ok" : "FAIL");

  std::string Artifact =
      writeBenchArtifact("closure_scaling", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("corpus_identical", CorpusIdentical);
        W.kv("rss_after_50k_bytes", uint64_t(RSSAfter50k));
        W.kv("rss_gate_bytes", uint64_t(RSSGate));
        W.kv("rss_ok", RSSOk);
        W.kv("completed_100k", Completed100k);
        W.kv("wall_100k_ms", Ms100k);
        W.kv("wall_ok", WallOk);
        W.key("tiers").beginArray();
        for (const TierResult &R : Tiers) {
          W.beginObject();
          W.kv("tier", R.Name);
          W.kv("nodes", uint64_t(R.Nodes));
          W.kv("representation", R.Rep);
          W.kv("closure_bytes", uint64_t(R.ClosureBytes));
          W.kv("bytes_per_node", R.BytesPerNode);
          W.kv("measure_ms", R.MeasureMs);
          W.kv("round_ms", R.RoundMs);
          W.kv("rounds", uint64_t(R.Rounds));
          W.kv("peak_rss_bytes", uint64_t(R.PeakRSS));
          W.endObject();
        }
        W.endArray();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return CorpusIdentical && RSSOk && Completed100k && WallOk ? 0 : 1;
}
