//===- bench/bench_beam_search.cpp - Beam/portfolio vs greedy -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The beam-search acceptance gate. Over the transform-dominated tiers
// (tight machines that force multi-round reduction) it checks, by exit
// code:
//
//   1. equivalence  — BeamWidth=1 reproduces the greedy driver
//                     byte-for-byte (RoundLog included) on every run;
//   2. determinism  — BeamWidth=4 is bit-identical at 1 and 4 threads;
//   3. quality      — beam (K<=4) or portfolio finds strictly fewer total
//                     required registers+FUs than greedy on at least one
//                     transform tier;
//   4. cost         — the winning beam config spends at most 3x greedy
//                     wall-clock on the tier where it wins.
//
// The table and BENCH_beam_search.json artifact carry per-tier sums of
// required resources and wall time for greedy, beam K=2/K=4, and
// portfolio, so regressions show up as numbers, not just a flipped bit.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

namespace {

struct RunOutcome {
  double Ms = 0;
  URSAResult Result;
};

RunOutcome timeDriver(const DependenceDAG &D, const MachineModel &M,
                      unsigned Beam, unsigned Threads, bool Portfolio) {
  URSAOptions O;
  O.BeamWidth = Beam;
  O.Threads = Threads;
  O.Portfolio = Portfolio;
  auto T0 = std::chrono::steady_clock::now();
  URSAResult R = runURSA(D, M, O);
  auto T1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(T1 - T0).count(),
          std::move(R)};
}

bool sameRound(const RoundRecord &A, const RoundRecord &B) {
  return A.Round == B.Round && A.Kind == B.Kind && A.Resource == B.Resource &&
         A.Detail == B.Detail && A.ExcessBefore == B.ExcessBefore &&
         A.ExcessAfter == B.ExcessAfter && A.CritPath == B.CritPath &&
         A.EdgesAdded == B.EdgesAdded &&
         A.SpillsInserted == B.SpillsInserted &&
         A.ProposalsTried == B.ProposalsTried;
}

bool sameOutcome(const URSAResult &A, const URSAResult &B) {
  if (A.FinalRequired != B.FinalRequired ||
      A.RoundLog.size() != B.RoundLog.size() ||
      A.WithinLimits != B.WithinLimits)
    return false;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I)
    if (!sameRound(A.RoundLog[I], B.RoundLog[I]))
      return false;
  return true;
}

unsigned sumRequired(const URSAResult &R) {
  unsigned S = 0;
  for (unsigned V : R.FinalRequired)
    S += V;
  return S;
}

struct Config {
  const char *Name;
  unsigned Beam;
  bool Portfolio;
};

constexpr Config Configs[] = {
    {"greedy", 1, false},
    {"beam2", 2, false},
    {"beam4", 4, false},
    {"portfolio", 1, true},
};
constexpr unsigned NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

struct Tier {
  std::string Name;
  unsigned NumInstrs;
  std::vector<std::pair<DependenceDAG, MachineModel>> Runs;
  double TotalMs[NumConfigs] = {0};
  unsigned TotalReq[NumConfigs] = {0};
};

} // namespace

int main() {
  std::printf("beam/portfolio search vs the greedy driver\n\n");

  // Transform-dominated tiers on genuinely tight machines (2 FUs, 4 or 6
  // registers): reduction runs many rounds and greedy's single trajectory
  // leaves resources on the table that a wider search recovers. Ample
  // machines are useless here — every config converges to the same
  // requirement once the trace fits.
  std::vector<Tier> Tiers;
  for (unsigned NI : {40u, 80u, 120u}) {
    Tier T;
    T.Name = "transform_" + std::to_string(NI);
    T.NumInstrs = NI;
    for (uint64_t Seed : {3ull, 5ull, 7ull, 11ull}) {
      GenOptions G;
      G.NumInstrs = NI;
      G.Window = 12;
      G.Seed = Seed;
      DependenceDAG D = buildDAG(generateTrace(G));
      T.Runs.emplace_back(D, MachineModel::homogeneous(2, 4));
      T.Runs.emplace_back(std::move(D), MachineModel::homogeneous(2, 6));
    }
    Tiers.push_back(std::move(T));
  }

  bool BeamOneMatchesGreedy = true;
  bool ThreadDeterministic = true;
  for (Tier &T : Tiers) {
    for (auto &[D, M] : T.Runs) {
      URSAResult Greedy{DependenceDAG(Trace("empty"))};
      for (unsigned C = 0; C != NumConfigs; ++C) {
        RunOutcome O = timeDriver(D, M, Configs[C].Beam, /*Threads=*/4,
                                  Configs[C].Portfolio);
        T.TotalMs[C] += O.Ms;
        T.TotalReq[C] += sumRequired(O.Result);
        if (C == 0) {
          // Gate 1: the default path (BeamWidth unset, serial) and the
          // explicit --beam 1 threaded run are byte-identical.
          URSAOptions Plain;
          Plain.Threads = 1;
          URSAResult Ref = runURSA(D, M, Plain);
          if (!sameOutcome(O.Result, Ref)) {
            BeamOneMatchesGreedy = false;
            std::fprintf(stderr, "BEAM1 DIVERGENCE on %s tier\n",
                         T.Name.c_str());
          }
          Greedy = std::move(O.Result);
        } else if (Configs[C].Beam == 4 && !Configs[C].Portfolio) {
          // Gate 2: K=4 serial reproduces K=4 threaded bit-for-bit.
          URSAOptions Serial;
          Serial.BeamWidth = 4;
          Serial.Threads = 1;
          URSAResult S = runURSA(D, M, Serial);
          if (!sameOutcome(O.Result, S)) {
            ThreadDeterministic = false;
            std::fprintf(stderr, "THREAD DIVERGENCE (beam4) on %s tier\n",
                         T.Name.c_str());
          }
        }
      }
    }
  }

  // Gates 3+4: some search config beats greedy's total registers+FUs
  // outright on a tier, within the 3x wall-clock budget on that tier.
  bool QualityWin = false, CostOk = false;
  std::string WinTier, WinConfig;
  for (const Tier &T : Tiers)
    for (unsigned C = 1; C != NumConfigs; ++C)
      if (T.TotalReq[C] < T.TotalReq[0] && !QualityWin) {
        QualityWin = true;
        CostOk = T.TotalMs[C] <= 3.0 * T.TotalMs[0];
        WinTier = T.Name;
        WinConfig = Configs[C].Name;
      }

  Table Tbl({"tier", "instrs", "greedy req", "beam2 req", "beam4 req",
             "portfolio req", "greedy ms", "beam4 ms", "portfolio ms"});
  for (Tier &T : Tiers)
    Tbl.addRow({T.Name, Table::fmt(uint64_t(T.NumInstrs)),
                Table::fmt(uint64_t(T.TotalReq[0])),
                Table::fmt(uint64_t(T.TotalReq[1])),
                Table::fmt(uint64_t(T.TotalReq[2])),
                Table::fmt(uint64_t(T.TotalReq[3])),
                Table::fmt(T.TotalMs[0], 1), Table::fmt(T.TotalMs[2], 1),
                Table::fmt(T.TotalMs[3], 1)});
  Tbl.print(std::cout);

  std::printf("\nbeam1==greedy: %s; thread-deterministic: %s; quality win: "
              "%s%s%s; cost<=3x: %s\n",
              BeamOneMatchesGreedy ? "yes" : "NO",
              ThreadDeterministic ? "yes" : "NO", QualityWin ? "yes (" : "NO",
              QualityWin ? (WinConfig + " on " + WinTier).c_str() : "",
              QualityWin ? ")" : "", CostOk ? "yes" : "NO");

  std::string Artifact =
      writeBenchArtifact("beam_search", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("beam1_matches_greedy", BeamOneMatchesGreedy);
        W.kv("thread_deterministic", ThreadDeterministic);
        W.kv("quality_win", QualityWin);
        W.kv("quality_win_tier", WinTier);
        W.kv("quality_win_config", WinConfig);
        W.kv("cost_within_3x", CostOk);
        W.key("tiers").beginArray();
        for (Tier &T : Tiers) {
          W.beginObject();
          W.kv("tier", T.Name);
          W.kv("instrs", uint64_t(T.NumInstrs));
          W.kv("traces", uint64_t(T.Runs.size()));
          for (unsigned C = 0; C != NumConfigs; ++C) {
            W.kv(std::string(Configs[C].Name) + "_req",
                 uint64_t(T.TotalReq[C]));
            W.kv(std::string(Configs[C].Name) + "_ms", T.TotalMs[C]);
          }
          W.endObject();
        }
        W.endArray();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return BeamOneMatchesGreedy && ThreadDeterministic && QualityWin && CostOk
             ? 0
             : 1;
}
