//===- bench/bench_end_to_end.cpp - X9: differential correctness -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X9: the safety net behind every other number — all pipelines, over a
// random corpus and machine sweep, must produce VLIW code whose simulated
// observable behaviour matches the reference interpreter exactly. Also
// summarizes utilization and cycles per pipeline. The correctness column
// must read 100%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ir/Interpreter.h"
#include "vliw/Simulator.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X9: end-to-end differential correctness and utilization\n\n");
  Table Tbl({"pipeline", "compiles", "correct", "geomean cycles",
             "mean utilization", "total spills"});
  struct Agg {
    unsigned Total = 0, Ok = 0, Correct = 0, Spills = 0;
    std::vector<double> Cycles;
    double Util = 0;
  };
  std::map<std::string, Agg> Sum;

  std::vector<std::pair<std::string, Trace>> Work;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    GenOptions Opts;
    Opts.NumInstrs = 30 + unsigned(Seed % 4) * 10;
    Opts.Window = 4 + unsigned(Seed % 5) * 3;
    Opts.MemOpProb = 0.1;
    Opts.BranchProb = Seed % 3 == 0 ? 0.1 : 0.0;
    Opts.Seed = Seed * 6151;
    Work.emplace_back("r" + std::to_string(Seed), generateTrace(Opts));
  }
  for (auto &[Name, T] : kernelSuite())
    Work.emplace_back(Name, T);

  std::vector<MachineModel> Machines = {MachineModel::homogeneous(2, 6),
                                        MachineModel::homogeneous(4, 8),
                                        MachineModel::homogeneous(8, 16)};
  for (const MachineModel &M : Machines) {
    for (auto &[Name, T] : Work) {
      (void)Name;
      RNG Rng(0x5EED ^ (T.size() * 2654435761u));
      MemoryState In = randomInputs(T, Rng);
      ExecResult Want = interpret(T, In);
      for (const std::string &P : pipelineNames()) {
        Agg &A = Sum[P];
        ++A.Total;
        CompileResult R = compileBy(P, T, M);
        if (!R.Ok)
          continue;
        ++A.Ok;
        A.Cycles.push_back(double(R.Cycles));
        A.Util += R.Utilization;
        A.Spills += R.SpillOps;
        SimResult Got = simulate(*R.Prog, In);
        if (Got.Ok && Got.Exec == Want)
          ++A.Correct;
      }
    }
  }

  bool AllCorrect = true;
  for (const std::string &P : pipelineNames()) {
    Agg &A = Sum[P];
    AllCorrect &= A.Correct == A.Ok && A.Ok == A.Total;
    Tbl.addRow({P,
                Table::fmt(uint64_t(A.Ok)) + "/" + Table::fmt(uint64_t(A.Total)),
                Table::fmt(100.0 * A.Correct / std::max(1u, A.Ok), 1) + "%",
                Table::fmt(geomean(A.Cycles), 1),
                Table::fmt(A.Util / std::max(1u, A.Ok), 2),
                Table::fmt(uint64_t(A.Spills))});
  }
  Tbl.print(std::cout);
  std::printf("\n%s\n", AllCorrect
                            ? "all pipelines compiled and matched the "
                              "reference interpreter on every input"
                            : "SOME RUNS FAILED OR DIVERGED");

  std::string Artifact = writeBenchArtifact("end_to_end", [&](obs::JsonWriter
                                                                  &W) {
    W.beginObject();
    W.kv("all_correct", AllCorrect);
    W.kv("machines", uint64_t(Machines.size()));
    W.kv("inputs", uint64_t(Work.size()));
    W.key("pipelines").beginArray();
    for (const std::string &P : pipelineNames()) {
      const Agg &A = Sum[P];
      W.beginObject();
      W.kv("pipeline", P);
      W.kv("runs", uint64_t(A.Total));
      W.kv("compiled", uint64_t(A.Ok));
      W.kv("correct", uint64_t(A.Correct));
      W.kv("geomean_cycles", geomean(A.Cycles));
      W.kv("mean_utilization", A.Util / std::max(1u, A.Ok));
      W.kv("total_spills", uint64_t(A.Spills));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  });
  if (Artifact.empty())
    std::fprintf(stderr, "warning: could not write bench artifact\n");
  else
    std::printf("artifact: %s\n", Artifact.c_str());
  return AllCorrect ? 0 : 1;
}
