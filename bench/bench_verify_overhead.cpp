//===- bench/bench_verify_overhead.cpp - Cost of phase-boundary checks ----===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the pipeline guardrails cost: full URSA compilation of the
// standard corpus at every VerifyLevel, on a modest and on a tight
// machine. The interesting numbers are the ratios — Basic should be cheap
// enough to leave on in development builds, Full (which re-runs the
// interpreter and simulator per compile) is for test suites and triage.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("verification overhead: corpus compile time per VerifyLevel\n\n");

  std::vector<std::pair<std::string, Trace>> Corpus = corpus(6);
  const std::pair<const char *, VerifyLevel> Levels[] = {
      {"none", VerifyLevel::None},
      {"basic", VerifyLevel::Basic},
      {"full", VerifyLevel::Full}};
  const std::pair<const char *, MachineModel> Machines[] = {
      {"4x8", MachineModel::homogeneous(4, 8)},
      {"2x4", MachineModel::homogeneous(2, 4)}};

  Table Tbl({"machine", "level", "compiles", "total ms", "ratio vs none"});
  for (const auto &[MName, M] : Machines) {
    double BaseMs = 0;
    for (const auto &[LName, Level] : Levels) {
      URSAOptions Opts;
      Opts.Verify = Level;
      unsigned Ok = 0;
      auto Start = std::chrono::steady_clock::now();
      // A few repetitions to get out of the clock's noise floor.
      for (unsigned Rep = 0; Rep != 5; ++Rep)
        for (const auto &[Name, T] : Corpus)
          Ok += compileURSA(T, M, Opts).Compile.Ok;
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      if (Level == VerifyLevel::None)
        BaseMs = Ms;
      char Total[32], Ratio[32];
      std::snprintf(Total, sizeof(Total), "%.1f", Ms);
      std::snprintf(Ratio, sizeof(Ratio), "%.2fx",
                    BaseMs > 0 ? Ms / BaseMs : 1.0);
      Tbl.addRow({MName, LName, std::to_string(Ok), Total, Ratio});
    }
  }
  Tbl.print(std::cout);
  return 0;
}
