//===- bench/bench_transform_order.cpp - X3: phase ordering inside URSA ----===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X3 (paper claim C7): Section 5 argues that register sequentialization
// helps functional units more than the converse, so the register
// transformations should run first. Compare the three driver orderings
// on a machine where both resources are scarce.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X3: URSA transformation-phase ordering "
              "(cycles | spills | driver rounds), machine 3fu/5r\n\n");
  MachineModel M = MachineModel::homogeneous(3, 5);
  Table Tbl({"workload", "registers-first", "fus-first", "integrated"});
  struct Agg {
    std::vector<double> Cycles;
    unsigned Spills = 0, Rounds = 0, Fail = 0;
  };
  std::map<PhaseOrdering, Agg> Sum;

  for (auto &[Name, T] : corpus()) {
    std::vector<std::string> Row{Name};
    for (PhaseOrdering O : {PhaseOrdering::RegistersFirst,
                            PhaseOrdering::FUsFirst,
                            PhaseOrdering::Integrated}) {
      URSAOptions UO;
      UO.Order = O;
      URSACompileResult R = compileURSA(T, M, UO);
      if (!R.Compile.Ok) {
        Row.push_back("fail");
        ++Sum[O].Fail;
        continue;
      }
      Sum[O].Cycles.push_back(double(R.Compile.Cycles));
      Sum[O].Spills += R.Compile.SpillOps;
      Sum[O].Rounds += R.AllocRounds;
      Row.push_back(Table::fmt(uint64_t(R.Compile.Cycles)) + " | " +
                    Table::fmt(uint64_t(R.Compile.SpillOps)) + " | " +
                    Table::fmt(uint64_t(R.AllocRounds)));
    }
    Tbl.addRow(Row);
  }
  std::vector<std::string> Last{"geomean cycles / total spills"};
  for (PhaseOrdering O : {PhaseOrdering::RegistersFirst,
                          PhaseOrdering::FUsFirst,
                          PhaseOrdering::Integrated})
    Last.push_back(Table::fmt(geomean(Sum[O].Cycles), 1) + " | " +
                   Table::fmt(uint64_t(Sum[O].Spills)) + " | " +
                   Table::fmt(uint64_t(Sum[O].Rounds)));
  Tbl.addRow(Last);
  Tbl.print(std::cout);
  std::printf("\nExpected shape (paper Section 5): registers-first should "
              "need no more rounds\nand no more spills than fus-first, "
              "because register sequencing also removes\nFU parallelism "
              "while FU sequencing stretches register lifetimes.\n");
  return 0;
}
