//===- bench/bench_service_throughput.cpp - Cold vs warm batches ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Batch throughput through the in-process CompileService: the same
// machinery ursa_served drives, minus the socket, so the numbers isolate
// the service's own contribution (queueing, worker dispatch, and the
// server-scope measurement cache shared across requests).
//
// Two corpus tiers, three passes each:
//
//   cold     first pass over the corpus — every fingerprint misses
//   warm     identical second pass — measured states come from the shared
//            cache, so compiles skip the from-scratch reuse/width build
//   fresh    a control pass over a *different* corpus of the same shape —
//            misses again, proving the warm win is cache reuse and not
//            some other warm-up effect
//
// The `measure` tier (wide traces, machine ample enough that nothing
// transforms) is where a compile service earns its cache: recompiling an
// unchanged function costs one fingerprint probe instead of the O(n^2)
// reuse relation and Dilworth matchings, which dominate such compiles.
// The `transform` tier (register-tight) is reported for honesty — there
// the proposal loop dominates and runs identically warm or cold, so the
// cache buys little wall clock.
//
// The gate mirrors the acceptance bar: on the repeated-corpus `measure`
// tier, warm throughput must be at least 1.5x cold, with every warm
// response byte-identical to its cold counterpart (both tiers).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "service/CompileService.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>

using namespace ursa;
using namespace ursa::service;
using namespace ursa::bench;

namespace {

struct PassResult {
  double WallMs = 0;
  std::vector<std::string> Texts;
  unsigned Failures = 0;
};

/// Runs one batch through \p Svc; wall clock covers submit through last
/// response.
PassResult runPass(CompileService &Svc, const std::vector<std::string> &Sources,
                   const MachineSpec &Machine, const char *Tag) {
  struct Sink {
    std::mutex Mu;
    std::condition_variable Cv;
    size_t Done = 0;
    std::vector<std::string> Texts;
    std::vector<bool> Ok;
  } S;
  S.Texts.resize(Sources.size());
  S.Ok.assign(Sources.size(), false);

  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != Sources.size(); ++I) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Compile;
    R.Id = std::string(Tag) + std::to_string(I);
    R.Source = Sources[I];
    R.Machine = Machine;
    Svc.handle(std::move(R), [&S, I](const ServiceResponse &Resp) {
      std::lock_guard<std::mutex> L(S.Mu);
      if (Resp.Status == ServiceResponse::StatusKind::Ok) {
        S.Texts[I] = Resp.Text;
        S.Ok[I] = true;
      }
      ++S.Done;
      S.Cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> L(S.Mu);
    S.Cv.wait(L, [&] { return S.Done == Sources.size(); });
  }
  PassResult R;
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  R.Texts = std::move(S.Texts);
  for (bool Ok : S.Ok)
    if (!Ok)
      ++R.Failures;
  return R;
}

std::vector<std::string> makeCorpus(unsigned N, unsigned Instrs,
                                    unsigned Window, uint64_t SeedBase) {
  std::vector<std::string> Out;
  for (unsigned I = 0; I != N; ++I) {
    GenOptions G;
    G.NumInstrs = Instrs;
    G.Window = Window;
    G.Seed = SeedBase + I;
    Out.push_back(generateTrace(G).str());
  }
  return Out;
}

struct TierResult {
  std::string Name;
  PassResult Cold, Warm, Fresh;
  unsigned Mismatches = 0;
  double warmSpeedup() const { return Cold.WallMs / Warm.WallMs; }
  double freshSpeedup() const { return Cold.WallMs / Fresh.WallMs; }
  bool identical() const {
    return Mismatches == 0 && !Cold.Failures && !Warm.Failures &&
           !Fresh.Failures;
  }
};

TierResult runTier(const char *Name, unsigned N, unsigned Instrs,
                   unsigned Window, const MachineSpec &Machine) {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.CacheSize = 4096;
  CompileService Svc(Cfg);

  std::vector<std::string> Corpus = makeCorpus(N, Instrs, Window, 1000);
  std::vector<std::string> Fresh = makeCorpus(N, Instrs, Window, 9000);

  TierResult T;
  T.Name = Name;
  T.Cold = runPass(Svc, Corpus, Machine, "cold");
  T.Warm = runPass(Svc, Corpus, Machine, "warm");
  T.Fresh = runPass(Svc, Fresh, Machine, "fresh");
  for (unsigned I = 0; I != N; ++I)
    if (T.Cold.Texts[I] != T.Warm.Texts[I])
      ++T.Mismatches;
  return T;
}

} // namespace

int main() {
  std::printf("service batch throughput: cold vs warm measurement cache\n\n");

  const unsigned N = 32;

  // Wide traces on an ample machine: the compile is the measurement.
  MachineSpec Ample;
  Ample.Fus = 4;
  Ample.Regs = 64;
  TierResult Measure = runTier("measure", N, 160, 48, Ample);

  // Register-tight: the proposal loop dominates; cache buys little.
  MachineSpec Tight;
  Tight.Fus = 2;
  Tight.Regs = 16;
  TierResult Transform = runTier("transform", N, 60, 12, Tight);

  Table Tbl({"tier", "pass", "functions", "wall ms", "funcs/s", "vs cold"});
  for (const TierResult *T : {&Measure, &Transform}) {
    auto Row = [&](const char *Pass, const PassResult &P, double Speedup) {
      Tbl.addRow({T->Name, Pass, Table::fmt(uint64_t(N)),
                  Table::fmt(P.WallMs, 1),
                  Table::fmt(1000.0 * N / P.WallMs, 1),
                  Table::fmt(Speedup, 2) + "x"});
    };
    Row("cold", T->Cold, 1.0);
    Row("warm", T->Warm, T->warmSpeedup());
    Row("fresh", T->Fresh, T->freshSpeedup());
  }
  Tbl.print(std::cout);

  bool Identical = Measure.identical() && Transform.identical();
  bool SpeedupOk = Measure.warmSpeedup() >= 1.5;
  std::printf("\nmeasure tier warm %.2fx cold (gate: >= 1.50x), transform "
              "tier %.2fx; warm responses %s cold\n",
              Measure.warmSpeedup(), Transform.warmSpeedup(),
              Identical ? "match" : "DIVERGE from (bug!)");

  std::string Artifact =
      writeBenchArtifact("service_throughput", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("functions", uint64_t(N));
        W.kv("workers", uint64_t(2));
        W.kv("warm_speedup_ok", SpeedupOk);
        W.kv("identical", Identical);
        W.key("tiers").beginArray();
        for (const TierResult *T : {&Measure, &Transform}) {
          W.beginObject();
          W.kv("tier", T->Name);
          W.kv("cold_ms", T->Cold.WallMs);
          W.kv("warm_ms", T->Warm.WallMs);
          W.kv("fresh_ms", T->Fresh.WallMs);
          W.kv("warm_speedup", T->warmSpeedup());
          W.kv("fresh_speedup", T->freshSpeedup());
          W.kv("mismatches", uint64_t(T->Mismatches));
          W.endObject();
        }
        W.endArray();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return Identical && SpeedupOk ? 0 : 1;
}
