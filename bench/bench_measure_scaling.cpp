//===- bench/bench_measure_scaling.cpp - X5a: measurement cost -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X5a (paper claim C9): the hammock-priority measurement is O(N^3) worst
// case; the reduction heuristics are O(N^2 m). Google-benchmark over DAG
// size for the measurement building blocks and one full URSA run.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"
#include "ursa/Measure.h"
#include "workload/Generators.h"

#include <benchmark/benchmark.h>

using namespace ursa;

namespace {

Trace traceOf(unsigned N) {
  GenOptions Opts;
  Opts.NumInstrs = N;
  Opts.Window = 12;
  Opts.Seed = 42 + N;
  return generateTrace(Opts);
}

void BM_Analysis(benchmark::State &State) {
  DependenceDAG D = buildDAG(traceOf(unsigned(State.range(0))));
  for (auto _ : State) {
    DAGAnalysis A(D);
    benchmark::DoNotOptimize(A.criticalPathLength());
  }
  State.SetComplexityN(State.range(0));
}

void BM_Hammocks(benchmark::State &State) {
  DependenceDAG D = buildDAG(traceOf(unsigned(State.range(0))));
  DAGAnalysis A(D);
  for (auto _ : State) {
    HammockForest HF(D, A);
    benchmark::DoNotOptimize(HF.size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_MeasureFU(benchmark::State &State) {
  DependenceDAG D = buildDAG(traceOf(unsigned(State.range(0))));
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
  for (auto _ : State)
    benchmark::DoNotOptimize(measureResource(D, A, HF, Res).MaxRequired);
  State.SetComplexityN(State.range(0));
}

void BM_MeasureReg(benchmark::State &State) {
  DependenceDAG D = buildDAG(traceOf(unsigned(State.range(0))));
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  ResourceId Res{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true};
  for (auto _ : State)
    benchmark::DoNotOptimize(measureResource(D, A, HF, Res).MaxRequired);
  State.SetComplexityN(State.range(0));
}

void BM_FullURSA(benchmark::State &State) {
  Trace T = traceOf(unsigned(State.range(0)));
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (auto _ : State) {
    URSAResult R = runURSA(buildDAG(T), M);
    benchmark::DoNotOptimize(R.Rounds);
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_Analysis)->RangeMultiplier(2)->Range(16, 512)->Complexity();
BENCHMARK(BM_Hammocks)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_MeasureFU)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_MeasureReg)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_FullURSA)->RangeMultiplier(2)->Range(16, 128)->Complexity();

BENCHMARK_MAIN();
