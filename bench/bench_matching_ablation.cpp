//===- bench/bench_matching_ablation.cpp - X5b: matching variants ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X5b (paper Section 3.1): the modified matching adds bipartite edges in
// hammock-priority batches so the decomposition projects minimally onto
// every nested hammock. Compare against plain one-shot matching: both
// give the global minimum (Theorem 1), but only the prioritized variant
// keeps the hammock projections minimal — quantified here as the number
// of hammocks whose projected chain count exceeds the hammock's own
// width. Also times Kuhn vs Hopcroft-Karp on the same relations.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "order/Chains.h"
#include "order/Matching.h"
#include "support/Table.h"
#include "ursa/ReuseDAG.h"
#include "workload/Generators.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;

namespace {

/// Hammocks (with >= 2 active members) whose projection of \p CD is not
/// minimal.
unsigned nonMinimalProjections(const ReuseRelation &R,
                               const ChainDecomposition &CD,
                               const HammockForest &HF) {
  unsigned Bad = 0;
  for (unsigned HI = 0; HI != HF.size(); ++HI) {
    const Hammock &H = HF.hammock(HI);
    std::vector<unsigned> Inside;
    for (unsigned N : R.Active)
      if (H.Members.test(N))
        Inside.push_back(N);
    if (Inside.size() < 2)
      continue;
    std::vector<int> Seen(CD.Chains.size(), 0);
    unsigned Projected = 0;
    for (unsigned N : Inside)
      if (!Seen[CD.ChainOf[N]]) {
        Seen[CD.ChainOf[N]] = 1;
        ++Projected;
      }
    Bad += Projected > decomposeChains(R.Rel, Inside).width();
  }
  return Bad;
}

} // namespace

int main() {
  std::printf("X5b: hammock-priority matching vs plain matching\n\n");
  Table Tbl({"instrs", "width(plain)", "width(prio)", "bad hammocks (plain)",
             "bad hammocks (prio)", "kuhn us", "hopcroft-karp us"});

  for (unsigned Size : {20u, 40u, 80u, 160u}) {
    unsigned BadPlain = 0, BadPrio = 0;
    unsigned WPlain = 0, WPrio = 0;
    double KuhnUs = 0, HkUs = 0;
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      GenOptions Opts;
      Opts.NumInstrs = Size;
      Opts.Window = 10;
      Opts.Seed = Seed * 37 + Size;
      DependenceDAG D = buildDAG(generateTrace(Opts));
      DAGAnalysis A(D);
      HammockForest HF(D, A);
      ReuseRelation R = buildFUReuse(D, A);

      auto T0 = std::chrono::steady_clock::now();
      ChainDecomposition Plain = decomposeChains(R.Rel, R.Active);
      auto T1 = std::chrono::steady_clock::now();
      ChainDecomposition Prio = decomposeChainsPrioritized(R.Rel, R.Active, HF);
      WPlain += Plain.width();
      WPrio += Prio.width();
      BadPlain += nonMinimalProjections(R, Plain, HF);
      BadPrio += nonMinimalProjections(R, Prio, HF);

      // Timing: Kuhn (one-shot) vs Hopcroft-Karp on the same edges.
      std::vector<std::vector<unsigned>> Adj(R.Rel.size());
      std::vector<std::pair<unsigned, unsigned>> Edges;
      for (unsigned X : R.Active)
        R.Rel.row(X).forEach([&](unsigned Y) {
          Adj[X].push_back(Y);
          Edges.emplace_back(X, Y);
        });
      auto T2 = std::chrono::steady_clock::now();
      IncrementalMatcher IM(R.Rel.size());
      IM.addBatchAndAugment(Edges);
      auto T3 = std::chrono::steady_clock::now();
      MatchingResult HK = hopcroftKarp(R.Rel.size(), Adj);
      auto T4 = std::chrono::steady_clock::now();
      if (IM.result().Size != HK.Size)
        std::printf("!! matcher disagreement\n");
      (void)T0;
      (void)T1;
      KuhnUs += std::chrono::duration<double, std::micro>(T3 - T2).count();
      HkUs += std::chrono::duration<double, std::micro>(T4 - T3).count();
    }
    Tbl.addRow({Table::fmt(uint64_t(Size)), Table::fmt(uint64_t(WPlain)),
                Table::fmt(uint64_t(WPrio)), Table::fmt(uint64_t(BadPlain)),
                Table::fmt(uint64_t(BadPrio)), Table::fmt(KuhnUs / 6, 1),
                Table::fmt(HkUs / 6, 1)});
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape: identical global widths (both matchings are "
              "maximum);\nzero non-minimal hammock projections for the "
              "prioritized variant; plain\nmatching may leave some. "
              "Hopcroft-Karp outruns Kuhn as N grows.\n");
  return 0;
}
