//===- bench/bench_kill_cover.cpp - X6: Kill() selection quality -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X6 (paper claim C10 / Theorem 2): defining Kill() is NP-complete, so
// URSA uses a greedy minimum-cover heuristic. On small random DAGs,
// compare the register requirement measured with (a) greedy cover,
// (b) exact minimum cover, and (c) exhaustive worst-case kill search,
// against the brute-force maximum liveness over all schedules (the
// ground truth).
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "order/Chains.h"
#include "support/Table.h"
#include "ursa/KillSelection.h"
#include "ursa/ReuseDAG.h"
#include "workload/Generators.h"

#include <cstdio>
#include <iostream>

using namespace ursa;

int main() {
  std::printf("X6: Kill() selection — measured register requirement vs "
              "ground truth\n\n");
  Table Tbl({"instrs", "samples", "greedy=truth", "exact-cover=truth",
             "exhaustive=truth", "greedy mean gap"});

  for (unsigned Size : {8u, 10u, 12u, 14u}) {
    GenOptions Opts;
    Opts.NumInstrs = Size;
    Opts.NumInputs = 3;
    Opts.NumOutputs = 1;
    unsigned Samples = 0, GreedyHit = 0, ExactHit = 0, ExhHit = 0;
    double GapSum = 0;
    for (uint64_t Seed = 1; Samples < 40 && Seed < 400; ++Seed) {
      Opts.Seed = Seed * 131 + Size;
      Trace T = generateTrace(Opts);
      if (T.size() > 20)
        continue;
      DependenceDAG D = buildDAG(T);
      DAGAnalysis A(D);
      unsigned Truth = bruteForceMaxLive(D, A);
      auto WidthWith = [&](const KillMap &K) {
        ReuseRelation R = buildRegReuse(D, A, K);
        return decomposeChains(R.Rel, R.Active).width();
      };
      unsigned G = WidthWith(selectKillsGreedy(D, A));
      unsigned E = WidthWith(selectKillsMinCoverExact(D, A));
      unsigned X = WidthWith(selectKillsExhaustiveWorstCase(D, A));
      GreedyHit += G == Truth;
      ExactHit += E == Truth;
      ExhHit += X == Truth;
      GapSum += double(Truth) - double(G);
      ++Samples;
    }
    Tbl.addRow({Table::fmt(uint64_t(Size)), Table::fmt(uint64_t(Samples)),
                Table::fmt(100.0 * GreedyHit / Samples, 0) + "%",
                Table::fmt(100.0 * ExactHit / Samples, 0) + "%",
                Table::fmt(100.0 * ExhHit / Samples, 0) + "%",
                Table::fmt(GapSum / Samples, 3)});
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape: the exhaustive search always matches the "
              "ground truth\n(DESIGN.md Section 5 equivalence); greedy and "
              "exact minimum cover track it\nclosely and never exceed it — "
              "both are safe under-approximations whose gap is\nthe price "
              "of Theorem 2's NP-completeness.\n");
  return 0;
}
