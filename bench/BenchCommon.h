//===- bench/BenchCommon.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment harnesses (X1-X9): the standard
/// corpus, pipeline dispatch by name, and small statistics. Every
/// harness prints through support/Table so EXPERIMENTS.md rows match
/// program output verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_BENCH_BENCHCOMMON_H
#define URSA_BENCH_BENCHCOMMON_H

#include "obs/Json.h"
#include "obs/Stats.h"
#include "sched/Pipelines.h"
#include "support/Table.h"
#include "ursa/Compiler.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace ursa {
namespace bench {

/// The X-series corpus: the kernel suite plus reproducible random layered
/// traces spanning widths.
inline std::vector<std::pair<std::string, Trace>> corpus(unsigned RandomSeeds = 4) {
  std::vector<std::pair<std::string, Trace>> C = kernelSuite();
  for (uint64_t Seed = 1; Seed <= RandomSeeds; ++Seed) {
    GenOptions Opts;
    Opts.NumInstrs = 40;
    Opts.Window = 4 + unsigned(Seed) * 4;
    Opts.MemOpProb = 0.05;
    Opts.Seed = Seed * 7919;
    C.emplace_back("rand" + std::to_string(Seed), generateTrace(Opts));
  }
  return C;
}

/// Pipeline dispatch by display name.
inline CompileResult compileBy(const std::string &Name, const Trace &T,
                               const MachineModel &M) {
  if (Name == "prepass")
    return compilePrepass(T, M);
  if (Name == "postpass")
    return compilePostpass(T, M);
  if (Name == "integrated")
    return compileIntegrated(T, M);
  return compileURSA(T, M).Compile;
}

inline const std::vector<std::string> &pipelineNames() {
  static const std::vector<std::string> Names = {"prepass", "postpass",
                                                 "integrated", "ursa"};
  return Names;
}

/// Writes a machine-readable artifact next to the human-readable table:
/// `BENCH_<Name>.json` in the working directory (or $URSA_BENCH_DIR when
/// set), schema "ursa.bench_artifact.v1". \p Fill is called with the
/// writer positioned at the "results" value and must emit exactly one
/// JSON value (typically an object or array). A process-wide stats
/// snapshot (obs::snapshotStats) rides along so CI artifacts carry the
/// pipeline's internal counters. Returns the path, or "" when the file
/// could not be written.
template <typename FillFn>
inline std::string writeBenchArtifact(const std::string &Name, FillFn Fill) {
  const char *Dir = std::getenv("URSA_BENCH_DIR");
  std::string Path = (Dir && *Dir ? std::string(Dir) + "/" : std::string()) +
                     "BENCH_" + Name + ".json";
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.bench_artifact.v1");
  W.kv("bench", Name);
  W.key("results");
  Fill(W);
  W.key("stats").beginObject();
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
    W.kv(SV.Name, SV.Value);
  W.endObject();
  W.endObject();
  std::ofstream Out(Path);
  if (!Out)
    return std::string();
  Out << W.str() << "\n";
  Out.flush();
  return Out ? Path : std::string();
}

/// Geometric mean of positive samples.
inline double geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double S = 0;
  for (double X : Xs)
    S += std::log(X);
  return std::exp(S / double(Xs.size()));
}

} // namespace bench
} // namespace ursa

#endif // URSA_BENCH_BENCHCOMMON_H
