//===- bench/figure_tables.cpp - E1..E5: the paper's figures ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the quantitative content of the paper's figures on the
// Figure 2 example DAG:
//
//   E1  Figure 2    requirements and minimal decomposition
//   E2  Figure 3(a) FU sequentialization        4 FUs -> 3
//   E3  Figure 3(b) register sequentialization  5 regs -> 4
//   E4  Figure 3(c) spill                       5 regs -> 3
//   E5  Figure 3(d) combination                 2 FUs, 3 regs
//
// Exits non-zero if any reproduced number disagrees with the paper.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "support/Table.h"
#include "ursa/Driver.h"
#include "ursa/Measure.h"
#include "ursa/Transforms.h"
#include "workload/Kernels.h"

#include <cstdio>
#include <iostream>

using namespace ursa;

namespace {

unsigned requirementOf(const DependenceDAG &D, ResourceId Res) {
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  return measureResource(D, A, HF, Res).MaxRequired;
}

ResourceId fuRes() {
  return {ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true};
}
ResourceId regRes() {
  return {ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true};
}

/// Applies the best proposal for \p Res from the generators relevant to
/// the resource, restricted to transform kind \p Kind.
DependenceDAG applyBestOfKind(const DependenceDAG &D, ResourceId Res,
                              TransformProposal::KindT Kind,
                              unsigned Limit) {
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  Measurement M = measureResource(D, A, HF, Res);
  std::vector<ExcessiveChainSet> Sets = findExcessiveSets(M, A, HF, Limit);
  DependenceDAG Best = D;
  unsigned BestReq = ~0u;
  for (const ExcessiveChainSet &E : Sets) {
    TransformContext Ctx{D, A, HF};
    std::vector<TransformProposal> Props;
    if (Kind == TransformProposal::FUSequence)
      Props = proposeFUSequencing(Ctx, E);
    else if (Kind == TransformProposal::RegSequence)
      Props = proposeRegSequencing(Ctx, E);
    else
      Props = proposeSpills(Ctx, E);
    for (const TransformProposal &P : Props) {
      if (P.Kind != Kind)
        continue;
      DependenceDAG Scratch = D;
      applyTransform(Scratch, P);
      unsigned Req = requirementOf(Scratch, Res);
      if (Req < BestReq) {
        BestReq = Req;
        Best = std::move(Scratch);
      }
    }
    break; // innermost set, as the paper's walkthrough does
  }
  return Best;
}

} // namespace

int main() {
  bool AllGood = true;
  auto Check = [&](const char *What, unsigned Got, unsigned Want) {
    bool Ok = Got == Want;
    AllGood &= Ok;
    std::printf("  %-46s got %2u, paper says %2u  [%s]\n", What, Got, Want,
                Ok ? "ok" : "MISMATCH");
  };
  auto CheckLE = [&](const char *What, unsigned Got, unsigned Want) {
    bool Ok = Got <= Want;
    AllGood &= Ok;
    std::printf("  %-46s got %2u, paper says %2u  [%s]\n", What, Got, Want,
                Ok ? "ok" : "MISMATCH");
  };

  DependenceDAG D = buildDAG(figure2Trace());

  std::printf("E1: Figure 2 — measurement of the example DAG\n");
  {
    DAGAnalysis A(D);
    HammockForest HF(D, A);
    Measurement Fu = measureResource(D, A, HF, fuRes());
    Measurement Reg = measureResource(D, A, HF, regRes());
    Check("functional units required (worst case)", Fu.MaxRequired, 4);
    Check("minimal decomposition chain count", Fu.Chains.width(), 4);
    Check("registers required (worst case)", Reg.MaxRequired, 5);
    std::vector<ExcessiveChainSet> Sets = findExcessiveSets(Fu, A, HF, 3);
    Check("excessive FU chain set size (3 FUs)",
          Sets.empty() ? 0 : unsigned(Sets.front().Subchains.size()), 4);
  }

  std::printf("\nE2: Figure 3(a) — FU sequentialization\n");
  {
    DependenceDAG After =
        applyBestOfKind(D, fuRes(), TransformProposal::FUSequence, 3);
    Check("FU requirement after one sequence edge",
          requirementOf(After, fuRes()), 3);
  }

  std::printf("\nE3: Figure 3(b) — register sequentialization\n");
  {
    DependenceDAG After =
        applyBestOfKind(D, regRes(), TransformProposal::RegSequence, 4);
    Check("register requirement after delaying {G,H}",
          requirementOf(After, regRes()), 4);
  }

  std::printf("\nE4: Figure 3(c) — spilling D\n");
  {
    DependenceDAG After =
        applyBestOfKind(D, regRes(), TransformProposal::Spill, 3);
    Check("register requirement after the spill",
          requirementOf(After, regRes()), 3);
  }

  std::printf("\nE5: Figure 3(d) — combined transformations (2 FUs, 3 regs)\n");
  {
    MachineModel M = MachineModel::homogeneous(2, 3);
    URSAResult R = runURSA(D, M);
    CheckLE("final FU requirement", R.FinalRequired[0], 2);
    CheckLE("final register requirement", R.FinalRequired[1], 3);
    std::printf("  (%u rounds: %u sequence edges, %u spills; "
                "critical path %u -> %u)\n",
                R.Rounds, R.SeqEdgesAdded, R.SpillsInserted, R.CritPathBefore,
                R.CritPathAfter);
  }

  std::printf("\n%s\n", AllGood ? "all figures reproduced"
                                : "SOME FIGURES DID NOT REPRODUCE");
  return AllGood ? 0 : 1;
}
