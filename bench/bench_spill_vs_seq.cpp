//===- bench/bench_spill_vs_seq.cpp - X4: the register transforms ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X4 (paper claims C8 + Section 5): ablate the two register
// transformations on a register-starved machine. Sequencing costs
// critical path but no instructions; spilling always applies but inserts
// memory traffic that competes for functional units. URSA's combined
// policy should dominate both ablations.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X4: register transform ablation on 4fu/4r "
              "(cycles | spill ops | fits?)\n\n");
  MachineModel M = MachineModel::homogeneous(4, 4);
  Table Tbl({"workload", "seq+spill (paper)", "seq-only", "spill-only"});
  struct Mode {
    const char *Name;
    bool Seq, Spill;
  };
  std::map<std::string, std::vector<double>> Cyc;
  std::map<std::string, unsigned> Spl;
  for (auto &[Name, T] : corpus()) {
    std::vector<std::string> Row{Name};
    for (Mode Md : {Mode{"both", true, true}, Mode{"seq", true, false},
                    Mode{"spill", false, true}}) {
      URSAOptions UO;
      UO.EnableRegSeq = Md.Seq;
      UO.EnableSpills = Md.Spill;
      URSACompileResult R = compileURSA(T, M, UO);
      if (!R.Compile.Ok) {
        Row.push_back("fail");
        continue;
      }
      Cyc[Md.Name].push_back(double(R.Compile.Cycles));
      Spl[Md.Name] += R.Compile.SpillOps;
      Row.push_back(Table::fmt(uint64_t(R.Compile.Cycles)) + " | " +
                    Table::fmt(uint64_t(R.Compile.SpillOps)) + " | " +
                    (R.AllocWithinLimits ? "y" : "n"));
    }
    Tbl.addRow(Row);
  }
  Tbl.addRow({"geomean / total",
              Table::fmt(geomean(Cyc["both"]), 1) + " | " +
                  Table::fmt(uint64_t(Spl["both"])),
              Table::fmt(geomean(Cyc["seq"]), 1) + " | " +
                  Table::fmt(uint64_t(Spl["seq"])),
              Table::fmt(geomean(Cyc["spill"]), 1) + " | " +
                  Table::fmt(uint64_t(Spl["spill"]))});
  Tbl.print(std::cout);
  std::printf("\nExpected shape: seq-only leaves residual excess on "
              "workloads whose lifetimes\ncannot be sequenced (claim C8's "
              "premise), spill-only floods the memory unit;\nthe combined "
              "policy needs the fewest cycles at modest spill counts.\n");
  return 0;
}
