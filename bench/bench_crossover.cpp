//===- bench/bench_crossover.cpp - X2: scarcity regimes ---------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X2 (paper claim C6, refined): which phase ordering hurts where? Sweep
// the register/FU balance at roughly constant machine "area" and watch
// the crossover: postpass collapses when registers are scarce (its reuse
// edges serialize), prepass collapses when registers are scarce too but
// in spills, and both are harmless when the machine is generous.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <iostream>
#include <map>

using namespace ursa;
using namespace ursa::bench;

int main() {
  std::printf("X2: scarcity crossover — geomean cycles relative to URSA | "
              "total spill ops\n\n");
  auto Corpus = corpus();
  Table Tbl({"machine", "regime", "prepass", "postpass", "integrated"});
  struct Cfg {
    unsigned Fus, Regs;
    const char *Regime;
  };
  for (Cfg C : {Cfg{1, 24, "FU-starved"}, Cfg{2, 12, "balanced-"},
                Cfg{4, 8, "balanced"}, Cfg{6, 6, "reg-lean"},
                Cfg{8, 4, "reg-starved"}}) {
    MachineModel M = MachineModel::homogeneous(C.Fus, C.Regs);
    std::map<std::string, std::vector<double>> Rel;
    std::map<std::string, unsigned> Spills;
    for (auto &[Name, T] : Corpus) {
      (void)Name;
      CompileResult U = compileBy("ursa", T, M);
      if (!U.Ok)
        continue;
      for (const std::string &P : {std::string("prepass"),
                                   std::string("postpass"),
                                   std::string("integrated")}) {
        CompileResult R = compileBy(P, T, M);
        if (!R.Ok)
          continue;
        Rel[P].push_back(double(R.Cycles) / double(U.Cycles));
        Spills[P] += R.SpillOps;
      }
    }
    Tbl.addRow({M.describe(), C.Regime,
                Table::fmt(geomean(Rel["prepass"]), 2) + " | " +
                    Table::fmt(uint64_t(Spills["prepass"])),
                Table::fmt(geomean(Rel["postpass"]), 2) + " | " +
                    Table::fmt(uint64_t(Spills["postpass"])),
                Table::fmt(geomean(Rel["integrated"]), 2) + " | " +
                    Table::fmt(uint64_t(Spills["integrated"]))});
  }
  Tbl.print(std::cout);
  std::printf("\nExpected shape: baseline penalties grow toward the "
              "reg-starved end (registers\nare the contended resource whose "
              "early or late handling the paper targets);\nwith ample "
              "registers the orderings converge.\n");
  return 0;
}
