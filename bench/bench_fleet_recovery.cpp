//===- bench/bench_fleet_recovery.cpp - Restart and disconnect recovery ---===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fleet fault-tolerance acceptance bench, two halves:
//
//   restart     a compile service with a persisted cache dir is killed
//               without ceremony (no drain snapshot — journal-only, the
//               kill -9 situation) and restarted; the warm restart must
//               answer the same measure-bound corpus at least 1.5x faster
//               than the cold first pass, byte-identically. A fresh
//               corpus is run as a control so the win is provably the
//               persisted cache and not general warm-up.
//
//   disconnect  a batch is driven through a TCP server via supervised
//               clients while the server is torn down and replaced on the
//               same port mid-batch; with retries on, every request must
//               land exactly once and the collected output must be
//               byte-identical to an uninterrupted run.
//
// Exit code gates both: restart speedup >= 1.5x, zero mismatches, zero
// failures. Writes BENCH_fleet_recovery.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "service/Client.h"
#include "service/Server.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

using namespace ursa;
using namespace ursa::service;
using namespace ursa::bench;

namespace {

std::vector<std::string> makeCorpus(unsigned N, unsigned Instrs,
                                    unsigned Window, uint64_t SeedBase) {
  std::vector<std::string> Out;
  for (unsigned I = 0; I != N; ++I) {
    GenOptions G;
    G.NumInstrs = Instrs;
    G.Window = Window;
    G.Seed = SeedBase + I;
    Out.push_back(generateTrace(G).str());
  }
  return Out;
}

struct PassResult {
  double WallMs = 0;
  std::vector<std::string> Texts;
  unsigned Failures = 0;
};

PassResult runPass(CompileService &Svc, const std::vector<std::string> &Sources,
                   const MachineSpec &Machine, const char *Tag) {
  struct Sink {
    std::mutex Mu;
    std::condition_variable Cv;
    size_t Done = 0;
    std::vector<std::string> Texts;
    std::vector<bool> Ok;
  } S;
  S.Texts.resize(Sources.size());
  S.Ok.assign(Sources.size(), false);

  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != Sources.size(); ++I) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Compile;
    R.Id = std::string(Tag) + std::to_string(I);
    R.Source = Sources[I];
    R.Machine = Machine;
    Svc.handle(std::move(R), [&S, I](const ServiceResponse &Resp) {
      std::lock_guard<std::mutex> L(S.Mu);
      if (Resp.Status == ServiceResponse::StatusKind::Ok) {
        S.Texts[I] = Resp.Text;
        S.Ok[I] = true;
      }
      ++S.Done;
      S.Cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> L(S.Mu);
    S.Cv.wait(L, [&] { return S.Done == Sources.size(); });
  }
  PassResult R;
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  R.Texts = std::move(S.Texts);
  for (bool Ok : S.Ok)
    if (!Ok)
      ++R.Failures;
  return R;
}

//===----------------------------------------------------------------------===//
// Half 1: warm restart from a journal-only cache image
//===----------------------------------------------------------------------===//

struct RestartResult {
  PassResult Cold, WarmRestart, FreshControl;
  double speedup() const { return Cold.WallMs / WarmRestart.WallMs; }
  unsigned Mismatches = 0;
};

RestartResult runRestart(const std::string &Dir, unsigned N) {
  // The measure-bound tier: wide traces on an ample machine, where the
  // compile *is* the measurement and the persisted cache pays for itself.
  MachineSpec Ample;
  Ample.Fus = 4;
  Ample.Regs = 64;
  std::vector<std::string> Corpus = makeCorpus(N, 160, 48, 1000);
  std::vector<std::string> Fresh = makeCorpus(N, 160, 48, 9000);

  ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.CacheSize = 4096;
  Cfg.CacheDir = Dir;
  Cfg.SnapshotEvery = 0;      // journal-only...
  Cfg.SnapshotOnStop = false; // ...and no drain snapshot: kill -9 in spirit

  RestartResult R;
  {
    CompileService Gen1(Cfg);
    R.Cold = runPass(Gen1, Corpus, Ample, "cold");
    // Gen1 dies here having never snapshotted; only the flushed journal
    // survives it.
  }
  {
    CompileService Gen2(Cfg);
    R.WarmRestart = runPass(Gen2, Corpus, Ample, "warm");
    R.FreshControl = runPass(Gen2, Fresh, Ample, "fresh");
  }
  for (unsigned I = 0; I != N; ++I)
    if (R.Cold.Texts[I] != R.WarmRestart.Texts[I])
      ++R.Mismatches;
  return R;
}

//===----------------------------------------------------------------------===//
// Half 2: a batch surviving server teardown mid-flight
//===----------------------------------------------------------------------===//

struct DisconnectResult {
  unsigned Requests = 0;
  unsigned Failures = 0;
  unsigned Mismatches = 0;
  double WallMs = 0;
};

DisconnectResult runDisconnect(unsigned N) {
  MachineSpec Spec;
  Spec.Fus = 2;
  Spec.Regs = 8;
  std::vector<std::string> Corpus = makeCorpus(N, 40, 10, 500);

  // Reference pass: one uninterrupted in-process service.
  std::vector<std::string> Reference;
  {
    ServiceConfig Cfg;
    Cfg.Workers = 2;
    CompileService Svc(Cfg);
    Reference = runPass(Svc, Corpus, Spec, "ref").Texts;
  }

  ServiceConfig Cfg;
  Cfg.Workers = 2;
  auto StartServer = [&](const std::string &Ep) {
    auto S = std::make_unique<Server>(Ep, Cfg);
    if (!S->start().isOk())
      return std::unique_ptr<Server>();
    return S;
  };

  DisconnectResult R;
  R.Requests = N;
  std::unique_ptr<Server> Srv = StartServer("tcp:0");
  if (!Srv) {
    R.Failures = N;
    return R;
  }
  std::string Endpoint = "tcp:" + std::to_string(Srv->port());
  std::thread Runner([&] { Srv->run(); });

  RetryPolicy Policy;
  Policy.MaxRetries = 8;
  Policy.BackoffBaseMs = 5;
  Policy.BackoffMaxMs = 200;
  StatusOr<ServiceClient> COr = ServiceClient::connectWithRetry(Endpoint, Policy);
  if (!COr.isOk()) {
    Srv->requestStop();
    Runner.join();
    R.Failures = N;
    return R;
  }

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::string> Got(N);
  for (unsigned I = 0; I != N; ++I) {
    // Mid-batch, tear the server down and replace it on the same port —
    // the injected disconnect every in-flight client must ride out.
    if (I == N / 2) {
      Srv->requestStop();
      Runner.join();
      Srv = StartServer(Endpoint);
      if (!Srv) {
        R.Failures += N - I;
        break;
      }
      Runner = std::thread([&] { Srv->run(); });
    }
    ServiceRequest Req;
    Req.Op = ServiceRequest::OpKind::Compile;
    Req.Id = std::to_string(I);
    Req.Source = Corpus[I];
    Req.Machine = Spec;
    ServiceResponse Resp;
    Status St = COr->callSupervised(Req, Resp);
    if (!St.isOk() || Resp.Status != ServiceResponse::StatusKind::Ok)
      ++R.Failures;
    else
      Got[I] = Resp.Text;
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();

  if (Srv) {
    Srv->requestStop();
    Runner.join();
  }
  for (unsigned I = 0; I != N; ++I)
    if (Got[I] != Reference[I])
      ++R.Mismatches;
  return R;
}

} // namespace

int main() {
  std::printf("fleet recovery: warm restart and mid-batch disconnects\n\n");

  std::string Dir =
      "/tmp/ursa_bench_fleet_recovery_" + std::to_string(unsigned(::getpid()));
  std::string Clean = "rm -rf " + Dir;
  (void)std::system(Clean.c_str());

  const unsigned RestartN = 24, DisconnectN = 24;
  RestartResult Restart = runRestart(Dir, RestartN);
  DisconnectResult Disc = runDisconnect(DisconnectN);
  (void)std::system(Clean.c_str());

  Table Tbl({"half", "pass", "functions", "wall ms", "vs cold"});
  auto Row = [&](const char *Half, const char *Pass, unsigned N,
                 const PassResult &P, double Speedup) {
    Tbl.addRow({Half, Pass, Table::fmt(uint64_t(N)), Table::fmt(P.WallMs, 1),
                Speedup > 0 ? Table::fmt(Speedup, 2) + "x" : std::string("-")});
  };
  Row("restart", "cold (gen 1)", RestartN, Restart.Cold, 1.0);
  Row("restart", "warm restart (gen 2)", RestartN, Restart.WarmRestart,
      Restart.speedup());
  Row("restart", "fresh control", RestartN, Restart.FreshControl,
      Restart.Cold.WallMs / Restart.FreshControl.WallMs);
  Tbl.addRow({"disconnect", "supervised batch",
              Table::fmt(uint64_t(DisconnectN)), Table::fmt(Disc.WallMs, 1),
              "-"});
  Tbl.print(std::cout);

  bool SpeedupOk = Restart.speedup() >= 1.5;
  bool RestartClean = Restart.Mismatches == 0 && Restart.Cold.Failures == 0 &&
                      Restart.WarmRestart.Failures == 0;
  bool DiscClean = Disc.Failures == 0 && Disc.Mismatches == 0;
  std::printf("\nrestart: warm %.2fx cold (gate >= 1.50x), %u mismatches; "
              "disconnect: %u/%u ok, %u mismatches\n",
              Restart.speedup(), Restart.Mismatches,
              DisconnectN - Disc.Failures, DisconnectN, Disc.Mismatches);

  std::string Artifact =
      writeBenchArtifact("fleet_recovery", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.key("restart").beginObject();
        W.kv("functions", uint64_t(RestartN));
        W.kv("cold_ms", Restart.Cold.WallMs);
        W.kv("warm_restart_ms", Restart.WarmRestart.WallMs);
        W.kv("fresh_control_ms", Restart.FreshControl.WallMs);
        W.kv("speedup", Restart.speedup());
        W.kv("speedup_ok", SpeedupOk);
        W.kv("mismatches", uint64_t(Restart.Mismatches));
        W.endObject();
        W.key("disconnect").beginObject();
        W.kv("requests", uint64_t(Disc.Requests));
        W.kv("failures", uint64_t(Disc.Failures));
        W.kv("mismatches", uint64_t(Disc.Mismatches));
        W.kv("wall_ms", Disc.WallMs);
        W.endObject();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return SpeedupOk && RestartClean && DiscClean ? 0 : 1;
}
