//===- bench/bench_trace_pipeline.cpp - X10: whole-function dynamics -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// X10 (Sections 2 + 6 end to end): compile whole control-flow functions
// through trace formation and measure *dynamic* cycles — the metric that
// amortizes off-trace penalties the static tables cannot see. Sweeps the
// unroll factor and compares URSA with the baselines on the same traces.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cfg/CFGCompiler.h"
#include "cfg/CFGParser.h"
#include "cfg/Unroll.h"

#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

namespace {

const char *SquaresSource = R"(
func squares {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  z0 = ldi 0
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.95 : exit
block exit:
  ret
}
)";

const char *PolySource = R"(
func poly {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  x  = load x
  a  = load acc
  t1 = mul x, x
  t2 = mul t1, x
  c3 = ldi 3
  c5 = ldi 5
  u1 = mul t2, c3
  u2 = mul t1, c5
  s  = add u1, u2
  s2 = add s, x
  a2 = add a, s2
  k  = ldi 1
  x2 = sub x, k
  z0 = ldi 0
  store acc, a2
  store x, x2
  c  = cmplt z0, x2
  br c ? loop:0.9 : exit
block exit:
  ret
}
)";

} // namespace

int main() {
  std::printf("X10: whole-function dynamic cycles via trace scheduling "
              "(machine 4fu/12r, 48 iterations)\n\n");
  MachineModel M = MachineModel::homogeneous(4, 12);
  Table Tbl({"function", "pipeline", "u=1", "u=2", "u=4", "u=8"});

  struct Fn {
    const char *Name;
    const char *Src;
  };
  for (Fn Func : {Fn{"squares", SquaresSource}, Fn{"poly", PolySource}}) {
    CFGFunction F = parseCFGOrDie(Func.Src);
    MemoryState In;
    In["i"] = Value::ofInt(48);
    In["x"] = Value::ofInt(48);
    CFGExecResult Want = interpretCFG(F, In);

    for (const std::string &P : pipelineNames()) {
      std::vector<std::string> Row{Func.Name, P};
      for (unsigned U : {1u, 2u, 4u, 8u}) {
        CFGFunction FU = unrollLoops(F, U);
        CompiledCFG C = compileCFG(
            FU, M, [&](const Trace &T, const MachineModel &Mm) {
              return compileBy(P, T, Mm);
            });
        if (!C.Ok) {
          Row.push_back("fail");
          continue;
        }
        CFGExecResult Got = runCompiledCFG(FU, C, In);
        if (!Got.Ok || !(Got.Memory == Want.Memory)) {
          Row.push_back("WRONG");
          continue;
        }
        Row.push_back(Table::fmt(uint64_t(Got.Cycles)) + " (" +
                      Table::fmt(uint64_t(C.TotalSpills)) + ")");
      }
      Tbl.addRow(Row);
    }
  }
  Tbl.print(std::cout);
  std::printf("\nCells: dynamic cycles for the whole run (static spill ops). "
              "Expected shape:\nunrolling reduces dynamic cycles for every "
              "pipeline (one trace spans several\niterations); URSA stays "
              "spill-free longest, the baselines trade spills or\nschedule "
              "length as in X1.\n");
  return 0;
}
