//===- bench/bench_incremental_measure.cpp - Delta vs full rebuild --------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The incremental measurement engine in isolation: for each tier, build
// one round-start state, draw a batch of edge-only sequencing proposals,
// and measure every proposal's scratch DAG twice — the full path (fresh
// DAGAnalysis + hammock forest + measureAll, what the driver did before)
// and the delta path (IncrementalMeasurer::measureDelta). Every number
// the delta path returns is checked against the full rebuild on the
// spot, so the speedup column can never come from diverging work.
//
// The gate mirrors the driver-level bench: the delta path must be at
// least 2x the full rebuild on every tier, with zero mismatches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"
#include "support/RNG.h"
#include "ursa/IncrementalMeasure.h"

#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct TierResult {
  std::string Name;
  unsigned NumInstrs = 0;
  unsigned Proposals = 0;
  double FullMs = 0;
  double DeltaMs = 0;
  unsigned Mismatches = 0;
  unsigned Fallbacks = 0;
};

} // namespace

int main() {
  std::printf("incremental measurement: delta closures + warm-started "
              "matchings vs full rebuild\n\n");

  MachineModel M = MachineModel::homogeneous(3, 8);
  auto Limits = machineResources(M);

  std::vector<TierResult> Tiers;
  for (unsigned NI : {200u, 400u, 800u}) {
    TierResult T;
    T.Name = "instrs_" + std::to_string(NI);
    T.NumInstrs = NI;

    for (uint64_t Seed : {3ull, 5ull, 7ull}) {
      GenOptions G;
      G.NumInstrs = NI;
      G.Window = 16;
      G.Seed = Seed;
      DependenceDAG D = buildDAG(generateTrace(G));

      // The round-start state a driver round would hold.
      DAGAnalysis A(D);
      HammockForest HF(D, A);
      std::vector<Measurement> Meas = measureAll(D, A, HF, M);
      IncrementalMeasurer Inc(D, A, Meas, Limits, MeasureOptions{});

      // A batch of independent-pair sequencing proposals, like a round's
      // candidate set. Independent pairs are scarce in window-local
      // traces, so enumerate rather than rejection-sample.
      std::vector<std::pair<unsigned, unsigned>> Indep;
      for (unsigned U = 2; U != D.size(); ++U)
        for (unsigned V = 2; V != D.size(); ++V)
          if (A.independent(U, V))
            Indep.emplace_back(U, V);
      RNG Rng(Seed * 0x9E37 + NI);
      std::vector<TransformProposal> Props;
      for (unsigned I = 0; I != 24 && !Indep.empty(); ++I) {
        TransformProposal P;
        P.Kind = TransformProposal::FUSequence;
        P.Res = Limits[0].first;
        P.SeqEdges = {Indep[Rng.below(Indep.size())]};
        Props.push_back(std::move(P));
      }

      for (const TransformProposal &P : Props) {
        DependenceDAG Scratch = D;
        applyTransform(Scratch, P);
        ++T.Proposals;

        auto T0 = std::chrono::steady_clock::now();
        DAGAnalysis SA(Scratch);
        HammockForest SHF(Scratch, SA);
        std::vector<Measurement> SMeas = measureAll(Scratch, SA, SHF, M);
        T.FullMs += msSince(T0);

        T0 = std::chrono::steady_clock::now();
        DeltaMeasurement DM;
        bool Ok = Inc.measureDelta(Scratch, P, DM);
        T.DeltaMs += msSince(T0);

        if (!Ok) {
          ++T.Fallbacks;
          continue;
        }
        unsigned WantExcess = 0;
        for (unsigned I = 0; I != SMeas.size(); ++I) {
          if (DM.Required[I] != SMeas[I].MaxRequired)
            ++T.Mismatches;
          if (SMeas[I].MaxRequired > Limits[I].second)
            WantExcess += SMeas[I].MaxRequired - Limits[I].second;
        }
        if (DM.CritPath != SA.criticalPathLength() ||
            DM.TotalExcess != WantExcess)
          ++T.Mismatches;
      }
    }
    Tiers.push_back(std::move(T));
  }

  bool Identical = true;
  double WorstSpeedup = 1e9;
  Table Tbl({"tier", "proposals", "full ms", "delta ms", "speedup",
             "fallbacks", "mismatches"});
  for (const TierResult &T : Tiers) {
    double Speedup = T.FullMs / T.DeltaMs;
    WorstSpeedup = std::min(WorstSpeedup, Speedup);
    if (T.Mismatches)
      Identical = false;
    Tbl.addRow({T.Name, Table::fmt(uint64_t(T.Proposals)),
                Table::fmt(T.FullMs, 1), Table::fmt(T.DeltaMs, 1),
                Table::fmt(Speedup, 2) + "x",
                Table::fmt(uint64_t(T.Fallbacks)),
                Table::fmt(uint64_t(T.Mismatches))});
  }
  Tbl.print(std::cout);
  std::printf("\nworst tier %.2fx; delta numbers %s the full rebuild\n",
              WorstSpeedup, Identical ? "match" : "DIVERGE from (bug!)");

  std::string Artifact =
      writeBenchArtifact("incremental_measure", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("identical", Identical);
        W.kv("worst_speedup", WorstSpeedup);
        W.kv("worst_speedup_ok", WorstSpeedup >= 2.0);
        W.key("tiers").beginArray();
        for (const TierResult &T : Tiers) {
          W.beginObject();
          W.kv("tier", T.Name);
          W.kv("instrs", uint64_t(T.NumInstrs));
          W.kv("proposals", uint64_t(T.Proposals));
          W.kv("full_ms", T.FullMs);
          W.kv("delta_ms", T.DeltaMs);
          W.kv("speedup", T.FullMs / T.DeltaMs);
          W.kv("fallbacks", uint64_t(T.Fallbacks));
          W.kv("mismatches", uint64_t(T.Mismatches));
          W.endObject();
        }
        W.endArray();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return Identical && WorstSpeedup >= 2.0 ? 0 : 1;
}
