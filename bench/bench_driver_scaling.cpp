//===- bench/bench_driver_scaling.cpp - Driver hot-loop scaling -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end driver wall time across trace sizes, serial vs the drained
// hot loop: "serial" is the pre-change driver (Threads=1, measurement
// reuse off — every round rebuilds the round-start state and the sweep
// tail re-measures up to five identical states), the other configs turn
// on the fingerprint-keyed measurement cache and the proposal-evaluation
// worker pool. Every config must produce an identical RoundLog and
// FinalRequired — the bench aborts otherwise, so the numbers can never
// come from diverging work.
//
// Two regimes show up deliberately: tight-machine tiers transform (a few
// rounds, most time in tentative proposal evaluation, which threads
// attack on multi-core hosts), and the largest tier is measurement-
// dominated (traces that fit or nearly fit, the common production case,
// where the cache collapses the rebuild tail). The headline number is
// the largest tier's serial / parallel+cache speedup.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/DAGBuilder.h"
#include "ursa/Driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

using namespace ursa;
using namespace ursa::bench;

namespace {

struct RunOutcome {
  double Ms = 0;
  URSAResult Result;
};

RunOutcome timeDriver(const DependenceDAG &D, const MachineModel &M,
                      unsigned Threads, bool Reuse, bool Incremental) {
  URSAOptions O;
  O.Threads = Threads;
  O.MeasurementReuse = Reuse;
  O.IncrementalMeasure = Incremental;
  auto T0 = std::chrono::steady_clock::now();
  URSAResult R = runURSA(D, M, O);
  auto T1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(T1 - T0).count(),
          std::move(R)};
}

bool sameRound(const RoundRecord &A, const RoundRecord &B) {
  return A.Round == B.Round && A.Kind == B.Kind && A.Resource == B.Resource &&
         A.Detail == B.Detail && A.ExcessBefore == B.ExcessBefore &&
         A.ExcessAfter == B.ExcessAfter && A.CritPath == B.CritPath &&
         A.EdgesAdded == B.EdgesAdded &&
         A.SpillsInserted == B.SpillsInserted &&
         A.ProposalsTried == B.ProposalsTried;
}

bool sameOutcome(const URSAResult &A, const URSAResult &B) {
  if (A.FinalRequired != B.FinalRequired ||
      A.RoundLog.size() != B.RoundLog.size() ||
      A.WithinLimits != B.WithinLimits)
    return false;
  for (unsigned I = 0; I != A.RoundLog.size(); ++I)
    if (!sameRound(A.RoundLog[I], B.RoundLog[I]))
      return false;
  return true;
}

struct Config {
  const char *Name;
  unsigned Threads;
  bool Reuse;
  bool Incr;
};

constexpr Config Configs[] = {
    {"serial", 1, false, false}, // pre-cache driver: the baseline
    {"serial+cache", 1, true, false},
    {"threads4+cache", 4, true, false}, // PR 3's drained hot loop
    {"serial+inc", 1, true, true},      // + incremental measurement
    {"threads4+inc", 4, true, true},    // the full stack
};
constexpr unsigned NumConfigs = sizeof(Configs) / sizeof(Configs[0]);
constexpr unsigned CacheCfg = 2; ///< threads4+cache (PR 3 headline)
constexpr unsigned IncCfg = 4;   ///< threads4+inc (this PR's headline)

struct Tier {
  std::string Name;
  unsigned NumInstrs;
  std::vector<std::pair<DependenceDAG, MachineModel>> Runs;
  double TotalMs[NumConfigs] = {0};
  unsigned Rounds = 0;
  unsigned Proposals = 0;
};

} // namespace

int main() {
  std::printf("driver hot-loop scaling: serial vs parallel+cached\n\n");

  // Tight 3x8 tiers transform (1+ rounds each); the largest tier runs
  // fitting traces on ample machines — measurement-dominated.
  std::vector<Tier> Tiers;
  for (unsigned NI : {100u, 200u, 400u}) {
    Tier T;
    T.Name = "transform_" + std::to_string(NI);
    T.NumInstrs = NI;
    for (uint64_t Seed : {3ull, 5ull, 7ull}) {
      GenOptions G;
      G.NumInstrs = NI;
      G.Window = 16;
      G.Seed = Seed;
      DependenceDAG D = buildDAG(generateTrace(G));
      T.Runs.emplace_back(D, MachineModel::homogeneous(3, 8));
      T.Runs.emplace_back(std::move(D), MachineModel::homogeneous(4, 8));
    }
    Tiers.push_back(std::move(T));
  }
  {
    Tier T;
    T.Name = "measure_800";
    T.NumInstrs = 800;
    for (uint64_t Seed : {3ull, 5ull, 7ull}) {
      GenOptions G;
      G.NumInstrs = 800;
      G.Window = 16;
      G.Seed = Seed;
      DependenceDAG D = buildDAG(generateTrace(G));
      T.Runs.emplace_back(D, MachineModel::homogeneous(4, 8));
      T.Runs.emplace_back(std::move(D), MachineModel::homogeneous(8, 16));
    }
    Tiers.push_back(std::move(T));
  }

  bool Deterministic = true;
  for (Tier &T : Tiers) {
    for (auto &[D, M] : T.Runs) {
      URSAResult Ref{DependenceDAG(Trace("empty"))};
      for (unsigned C = 0; C != NumConfigs; ++C) {
        // Best of 2 repetitions per config, against allocator noise.
        double Best = 0;
        for (unsigned Rep = 0; Rep != 2; ++Rep) {
          RunOutcome O = timeDriver(D, M, Configs[C].Threads,
                                    Configs[C].Reuse, Configs[C].Incr);
          Best = Rep == 0 ? O.Ms : std::min(Best, O.Ms);
          if (C == 0 && Rep == 0) {
            for (const RoundRecord &RR : O.Result.RoundLog)
              T.Proposals += RR.ProposalsTried;
            T.Rounds += O.Result.Rounds;
            Ref = std::move(O.Result);
          } else if (!sameOutcome(O.Result, Ref)) {
            Deterministic = false;
            std::fprintf(stderr, "DIVERGENCE: %s on %s tier\n",
                         Configs[C].Name, T.Name.c_str());
          }
        }
        T.TotalMs[C] += Best;
      }
    }
  }

  Table Tbl({"tier", "instrs", "rounds", "proposals", "serial ms",
             "threads4+cache ms", "threads4+inc ms", "cache speedup",
             "inc speedup"});
  for (Tier &T : Tiers)
    Tbl.addRow({T.Name, Table::fmt(uint64_t(T.NumInstrs)),
                Table::fmt(uint64_t(T.Rounds)),
                Table::fmt(uint64_t(T.Proposals)),
                Table::fmt(T.TotalMs[0], 1),
                Table::fmt(T.TotalMs[CacheCfg], 1),
                Table::fmt(T.TotalMs[IncCfg], 1),
                Table::fmt(T.TotalMs[0] / T.TotalMs[CacheCfg], 2) + "x",
                Table::fmt(T.TotalMs[0] / T.TotalMs[IncCfg], 2) + "x"});
  Tbl.print(std::cout);

  const Tier &Largest = Tiers.back();
  double LargestSpeedup = Largest.TotalMs[0] / Largest.TotalMs[IncCfg];
  // The incremental gate: every transform-dominated tier (where PR 3's
  // cache alone managed ~1.4x) must reach 2x against the serial baseline
  // with incremental measurement on.
  double WorstTransformSpeedup = 1e9;
  for (const Tier &T : Tiers)
    if (T.Name.rfind("transform_", 0) == 0)
      WorstTransformSpeedup = std::min(
          WorstTransformSpeedup, T.TotalMs[0] / T.TotalMs[IncCfg]);
  std::printf("\nlargest tier (%s): %.2fx serial -> threads4+inc; worst "
              "transform tier %.2fx; results %s\n",
              Largest.Name.c_str(), LargestSpeedup, WorstTransformSpeedup,
              Deterministic ? "identical across all configs"
                            : "DIVERGED (bug!)");

  std::string Artifact =
      writeBenchArtifact("driver_scaling", [&](obs::JsonWriter &W) {
        W.beginObject();
        W.kv("deterministic", Deterministic);
        W.kv("largest_tier", Largest.Name);
        W.kv("largest_tier_speedup", LargestSpeedup);
        W.kv("largest_tier_speedup_ok", LargestSpeedup >= 2.0);
        W.kv("worst_transform_tier_speedup", WorstTransformSpeedup);
        W.kv("worst_transform_tier_speedup_ok", WorstTransformSpeedup >= 2.0);
        W.key("tiers").beginArray();
        for (Tier &T : Tiers) {
          W.beginObject();
          W.kv("tier", T.Name);
          W.kv("instrs", uint64_t(T.NumInstrs));
          W.kv("traces", uint64_t(T.Runs.size()));
          W.kv("rounds", uint64_t(T.Rounds));
          W.kv("proposals_tried", uint64_t(T.Proposals));
          for (unsigned C = 0; C != NumConfigs; ++C)
            W.kv(std::string(Configs[C].Name) + "_ms", T.TotalMs[C]);
          W.kv("cache_speedup", T.TotalMs[0] / T.TotalMs[CacheCfg]);
          W.kv("speedup", T.TotalMs[0] / T.TotalMs[IncCfg]);
          W.endObject();
        }
        W.endArray();
        W.endObject();
      });
  if (!Artifact.empty())
    std::printf("artifact: %s\n", Artifact.c_str());

  return Deterministic && LargestSpeedup >= 2.0 &&
                 WorstTransformSpeedup >= 2.0
             ? 0
             : 1;
}
