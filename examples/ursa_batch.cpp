//===- examples/ursa_batch.cpp - Batch client for ursa_served -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compiles a batch of trace files through a running ursa_served:
//
//   ursa_batch --socket PATH [files...] [options]
//
//   --machine FxR         homogeneous machine (as ursa_cc)
//   --classed i,f,m,g,p   classed machine
//   --latencies i,f,m     operation latencies
//   --pipelined           initiation-interval-1 FUs
//   --order NAME          regs | fus | integrated
//   --verify LEVEL        off | basic | full
//   --guaranteed-fit      force residual excess to fit
//   --time-budget MS      per-compile wall-clock budget
//   --deadline MS         per-request deadline (queue + compile)
//   --window N            max requests in flight (default 16); keeps the
//                         batch inside the server's queue so nothing is
//                         shed, while still pipelining across workers
//   --report              fetch and print the server report instead
//   --shutdown            ask the server to shut down (drains first)
//
// Requests are pipelined up to the window and responses matched back by
// id, so compiles run concurrently on the server; output is printed in
// input order and is bit-identical to running `ursa_cc FILE ...` per
// file, at any worker count. A shed response (server momentarily full)
// is retried with backoff.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::service;

namespace {

bool parseUints(const char *S, std::vector<unsigned> &Out, char Sep) {
  Out.clear();
  std::stringstream In(S);
  std::string Tok;
  while (std::getline(In, Tok, Sep))
    Out.push_back(unsigned(std::atoi(Tok.c_str())));
  return !Out.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  if (const char *S = std::getenv("URSA_SERVICE_SOCKET"))
    SocketPath = S;
  std::vector<std::string> Files;
  ServiceRequest Proto; // machine/options shared by every file
  unsigned Window = 16;
  bool DoReport = false, DoShutdown = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    std::vector<unsigned> V;
    if (A == "--socket" && (S = Next())) {
      SocketPath = S;
    } else if (A == "--machine" && (S = Next()) && parseUints(S, V, 'x') &&
               V.size() == 2) {
      Proto.Machine.Classed = false;
      Proto.Machine.Fus = V[0];
      Proto.Machine.Regs = V[1];
    } else if (A == "--classed" && (S = Next()) && parseUints(S, V, ',') &&
               V.size() == 5) {
      Proto.Machine.Classed = true;
      Proto.Machine.IntFus = V[0];
      Proto.Machine.FltFus = V[1];
      Proto.Machine.MemFus = V[2];
      Proto.Machine.Gprs = V[3];
      Proto.Machine.Fprs = V[4];
    } else if (A == "--latencies" && (S = Next()) && parseUints(S, V, ',') &&
               V.size() == 3) {
      Proto.Machine.LatInt = V[0];
      Proto.Machine.LatFlt = V[1];
      Proto.Machine.LatMem = V[2];
    } else if (A == "--pipelined") {
      Proto.Machine.Pipelined = true;
    } else if (A == "--order" && (S = Next())) {
      Proto.Order = S;
    } else if (A == "--verify" && (S = Next())) {
      Proto.Verify = S;
    } else if (A == "--guaranteed-fit") {
      Proto.GuaranteedFit = true;
    } else if (A == "--time-budget" && (S = Next())) {
      Proto.TimeBudgetMs = unsigned(std::atoi(S));
    } else if (A == "--deadline" && (S = Next())) {
      Proto.DeadlineMs = unsigned(std::atoi(S));
    } else if (A == "--window" && (S = Next()) && std::atoi(S) > 0) {
      Window = unsigned(std::atoi(S));
    } else if (A == "--report") {
      DoReport = true;
    } else if (A == "--shutdown") {
      DoShutdown = true;
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  if (SocketPath.empty() || (Files.empty() && !DoReport && !DoShutdown)) {
    std::fprintf(stderr,
                 "usage: ursa_batch --socket PATH [files...] [options]\n"
                 "       (see the header of examples/ursa_batch.cpp)\n");
    return 1;
  }

  StatusOr<ServiceClient> COr = ServiceClient::connect(SocketPath);
  if (!COr.isOk()) {
    std::fprintf(stderr, "error: %s\n", COr.status().str().c_str());
    return 1;
  }
  ServiceClient &Client = *COr;

  // Per-file results, indexed like Files; printed in order at the end.
  std::vector<ServiceResponse> Results(Files.size());
  std::vector<bool> Got(Files.size(), false);
  std::vector<std::string> Sources(Files.size());
  for (size_t I = 0; I != Files.size(); ++I) {
    std::ifstream In(Files[I]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Files[I].c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Sources[I] = Buf.str();
  }

  auto SendOne = [&](size_t I) -> bool {
    ServiceRequest R = Proto;
    R.Op = ServiceRequest::OpKind::Compile;
    R.Id = std::to_string(I);
    R.Source = Sources[I];
    if (Status St = Client.send(R); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return false;
    }
    return true;
  };

  size_t NextToSend = 0, Outstanding = 0, Remaining = Files.size();
  unsigned ShedRetries = 0;
  while (Remaining) {
    while (NextToSend < Files.size() && Outstanding < Window) {
      if (!SendOne(NextToSend))
        return 1;
      ++NextToSend;
      ++Outstanding;
    }
    ServiceResponse Resp;
    bool Closed = false;
    if (Status St = Client.recv(Resp, Closed); !St.isOk() || Closed) {
      std::fprintf(stderr, "error: %s\n",
                   Closed ? "server closed the connection" : St.str().c_str());
      return 1;
    }
    --Outstanding;
    size_t I = size_t(std::atol(Resp.Id.c_str()));
    if (I >= Files.size() || Got[I]) {
      std::fprintf(stderr, "error: response for unknown id '%s'\n",
                   Resp.Id.c_str());
      return 1;
    }
    if (Resp.Status == ServiceResponse::StatusKind::Shed) {
      // Momentary backpressure: ease off and resend this file.
      if (++ShedRetries > 100) {
        std::fprintf(stderr, "error: '%s' shed repeatedly, giving up\n",
                     Files[I].c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (!SendOne(I))
        return 1;
      ++Outstanding;
      continue;
    }
    Results[I] = Resp;
    Got[I] = true;
    --Remaining;
  }

  int Exit = 0;
  for (size_t I = 0; I != Files.size(); ++I) {
    const ServiceResponse &R = Results[I];
    if (R.Status == ServiceResponse::StatusKind::Ok) {
      std::fputs(R.Text.c_str(), stdout);
    } else {
      std::fprintf(stderr, "%s: %s: %s\n", Files[I].c_str(),
                   statusName(R.Status), R.Error.c_str());
      Exit = 1;
    }
  }

  if (DoReport) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Report;
    R.Id = "report";
    ServiceResponse Resp;
    if (Status St = Client.call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
    std::printf("%s\n", Resp.Text.c_str());
  }
  if (DoShutdown) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Shutdown;
    R.Id = "shutdown";
    ServiceResponse Resp;
    if (Status St = Client.call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
  }
  return Exit;
}
