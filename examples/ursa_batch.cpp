//===- examples/ursa_batch.cpp - Batch client for ursa_served -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compiles a batch of trace files through a running ursa_served:
//
//   ursa_batch --connect ENDPOINT [files...] [options]
//
//   --connect ENDPOINT    "unix:PATH", a bare socket path, or
//                         "tcp:HOST:PORT" (--socket is an alias)
//   --machine FxR         homogeneous machine (as ursa_cc)
//   --classed i,f,m,g,p   classed machine
//   --latencies i,f,m     operation latencies
//   --pipelined           initiation-interval-1 FUs
//   --order NAME          regs | fus | integrated
//   --verify LEVEL        off | basic | full
//   --guaranteed-fit      force residual excess to fit
//   --time-budget MS      per-compile wall-clock budget
//   --beam K              driver beam width (1 = greedy; see ursa_cc)
//   --portfolio           race phase orderings, keep the best allocation
//   --deadline MS         per-request deadline (queue + compile)
//   --client NAME         client identity for the router's fair queueing
//                         and quotas (ignored by plain backends)
//   --stall MS            per-request round stall (server test hook; only
//                         honored by servers started with --test-hooks)
//   --window N            max requests in flight (default 16)
//   --retries N           transport-failure budget: how many times the
//                         batch may reconnect and resume (default 0)
//   --report              fetch and print the server report instead
//   --stats               fetch and print the live ursa.service_stats.v1
//                         document (after compiling any files given)
//   --prometheus          print the stats as Prometheus text exposition
//   --flight              include the flight-recorder ring in the stats
//   --health              fetch and print ursa.service_health.v1
//   --client-stats        on exit, print the client-side counters
//                         (ursa.client.*) and the client-observed latency
//                         histogram percentiles to stderr
//   --shutdown            ask the server to shut down (drains first)
//
// Requests are pipelined up to the window and responses matched back by
// id; output is printed in input order and is bit-identical to running
// `ursa_cc FILE ...` per file, at any worker count.
//
// Fault tolerance: a shed response is retried with backoff; a
// busy_retry_later response (a router momentarily out of backends) is
// resent after a short fixed delay on a separate, larger budget — fleet
// congestion is not the client's fault and must not eat its shed
// budget. On a
// transport failure the batch re-queues every file the server provably
// never started — unsent files always; in-flight files only when the
// connection closed cleanly before their responses (a draining server
// flushes responses for admitted work first) — reconnects with backoff
// while the --retries budget lasts, and resumes. Files lost to an
// indeterminate failure (reset mid-frame) are never replayed
// (at-most-once); they are reported in a per-file failure table on
// stderr and the exit status is nonzero.
//
//===----------------------------------------------------------------------===//

#include "obs/Stats.h"
#include "service/Client.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::service;

namespace {

bool parseUints(const char *S, std::vector<unsigned> &Out, char Sep) {
  Out.clear();
  std::stringstream In(S);
  std::string Tok;
  while (std::getline(In, Tok, Sep))
    Out.push_back(unsigned(std::atoi(Tok.c_str())));
  return !Out.empty();
}

/// Per-file progress through the batch.
enum class FileState { Unsent, InFlight, Done, Failed };

} // namespace

int main(int Argc, char **Argv) {
  std::string Endpoint;
  if (const char *S = std::getenv("URSA_SERVICE_SOCKET"))
    Endpoint = S;
  std::vector<std::string> Files;
  ServiceRequest Proto; // machine/options shared by every file
  unsigned Window = 16;
  unsigned Retries = 0;
  bool DoReport = false, DoShutdown = false;
  bool DoStats = false, DoHealth = false, DoClientStats = false;
  bool StatsProm = false, StatsFlight = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    std::vector<unsigned> V;
    if ((A == "--connect" || A == "--socket") && (S = Next())) {
      Endpoint = S;
    } else if (A == "--machine" && (S = Next()) && parseUints(S, V, 'x') &&
               V.size() == 2) {
      Proto.Machine.Classed = false;
      Proto.Machine.Fus = V[0];
      Proto.Machine.Regs = V[1];
    } else if (A == "--classed" && (S = Next()) && parseUints(S, V, ',') &&
               V.size() == 5) {
      Proto.Machine.Classed = true;
      Proto.Machine.IntFus = V[0];
      Proto.Machine.FltFus = V[1];
      Proto.Machine.MemFus = V[2];
      Proto.Machine.Gprs = V[3];
      Proto.Machine.Fprs = V[4];
    } else if (A == "--latencies" && (S = Next()) && parseUints(S, V, ',') &&
               V.size() == 3) {
      Proto.Machine.LatInt = V[0];
      Proto.Machine.LatFlt = V[1];
      Proto.Machine.LatMem = V[2];
    } else if (A == "--pipelined") {
      Proto.Machine.Pipelined = true;
    } else if (A == "--order" && (S = Next())) {
      Proto.Order = S;
    } else if (A == "--verify" && (S = Next())) {
      Proto.Verify = S;
    } else if (A == "--guaranteed-fit") {
      Proto.GuaranteedFit = true;
    } else if (A == "--time-budget" && (S = Next())) {
      Proto.TimeBudgetMs = unsigned(std::atoi(S));
    } else if (A == "--beam" && (S = Next()) && std::atoi(S) > 0) {
      Proto.Beam = unsigned(std::atoi(S));
    } else if (A == "--portfolio") {
      Proto.Portfolio = true;
    } else if (A == "--deadline" && (S = Next())) {
      Proto.DeadlineMs = unsigned(std::atoi(S));
    } else if (A == "--client" && (S = Next())) {
      Proto.Client = S;
    } else if (A == "--stall" && (S = Next())) {
      Proto.StallMs = unsigned(std::atoi(S));
    } else if (A == "--window" && (S = Next()) && std::atoi(S) > 0) {
      Window = unsigned(std::atoi(S));
    } else if (A == "--retries" && (S = Next())) {
      Retries = unsigned(std::atoi(S));
    } else if (A == "--report") {
      DoReport = true;
    } else if (A == "--stats") {
      DoStats = true;
    } else if (A == "--prometheus") {
      DoStats = StatsProm = true;
    } else if (A == "--flight") {
      DoStats = StatsFlight = true;
    } else if (A == "--health") {
      DoHealth = true;
    } else if (A == "--client-stats") {
      DoClientStats = true;
    } else if (A == "--shutdown") {
      DoShutdown = true;
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  if (Endpoint.empty() ||
      (Files.empty() && !DoReport && !DoShutdown && !DoStats && !DoHealth)) {
    std::fprintf(stderr,
                 "usage: ursa_batch --connect ENDPOINT [files...] [options]\n"
                 "       (see the header of examples/ursa_batch.cpp)\n");
    return 1;
  }

  // Connect (the initial connection also gets the retry budget: a server
  // mid-restart looks like connect-refused).
  RetryPolicy ConnPolicy;
  ConnPolicy.MaxRetries = Retries;
  ConnPolicy.BackoffBaseMs = 20;
  ConnPolicy.BackoffMaxMs = 1000;
  StatusOr<ServiceClient> COr =
      ServiceClient::connectWithRetry(Endpoint, ConnPolicy);
  if (!COr.isOk()) {
    std::fprintf(stderr, "error: %s\n", COr.status().str().c_str());
    return 1;
  }
  std::optional<ServiceClient> Client(std::move(*COr));

  std::vector<ServiceResponse> Results(Files.size());
  std::vector<FileState> State(Files.size(), FileState::Unsent);
  std::vector<std::string> FailReason(Files.size());
  std::vector<std::string> Sources(Files.size());
  for (size_t I = 0; I != Files.size(); ++I) {
    std::ifstream In(Files[I]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Files[I].c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Sources[I] = Buf.str();
  }

  std::deque<size_t> Pending; // files not yet (re)sent, in input order
  for (size_t I = 0; I != Files.size(); ++I)
    Pending.push_back(I);
  std::vector<size_t> InFlight; // awaiting a response on this connection
  size_t Remaining = Files.size();
  unsigned ReconnectsLeft = Retries;
  unsigned ReconnectRound = 0;
  unsigned ShedRetries = 0;
  unsigned BusyRetries = 0;

  auto FailFile = [&](size_t I, const std::string &Why) {
    State[I] = FileState::Failed;
    FailReason[I] = Why;
    --Remaining;
  };

  /// The connection died. Requeue what the at-most-once rule allows:
  /// unsent files always; in-flight files only on a clean pre-response
  /// close (\p CleanClose).
  auto TransportFailure = [&](bool CleanClose, const std::string &Why) {
    for (size_t I : InFlight) {
      if (CleanClose) {
        State[I] = FileState::Unsent;
        Pending.push_front(I);
      } else {
        FailFile(I, Why + " (indeterminate: not replayed)");
      }
    }
    InFlight.clear();
    Client.reset();
  };

  // Per-file client-observed latency (send to matched response) feeds
  // the ursa.client.e2e_us histogram printed by --client-stats.
  std::vector<std::chrono::steady_clock::time_point> SentAt(Files.size());

  auto SendOne = [&](size_t I) -> bool {
    ServiceRequest R = Proto;
    R.Op = ServiceRequest::OpKind::Compile;
    R.Id = std::to_string(I);
    R.Source = Sources[I];
    SentAt[I] = std::chrono::steady_clock::now();
    Status St = Client->send(R);
    if (St.isOk()) {
      State[I] = FileState::InFlight;
      InFlight.push_back(I);
      return true;
    }
    // EPIPE: the peer closed before this frame went out — never read,
    // safe to retry. Anything else on send is also pre-admission for
    // *this* file (its bytes never completed), so requeue it; the
    // already-in-flight files are settled by the recv path.
    State[I] = FileState::Unsent;
    Pending.push_front(I);
    TransportFailure(/*CleanClose=*/Client->lastErrno() == EPIPE,
                     "send failed: " + St.message());
    return false;
  };

  auto DropInFlight = [&](std::vector<size_t> &V, size_t I) {
    for (size_t K = 0; K != V.size(); ++K)
      if (V[K] == I) {
        V.erase(V.begin() + K);
        return;
      }
  };

  while (Remaining) {
    if (!Client) {
      if (!ReconnectsLeft) {
        while (!Pending.empty()) {
          size_t I = Pending.front();
          Pending.pop_front();
          if (State[I] == FileState::Unsent)
            FailFile(I, "not attempted: transport failed and the retry "
                        "budget is exhausted (--retries)");
        }
        break;
      }
      --ReconnectsLeft;
      unsigned Cap = std::min(1000u, 20u << std::min(ReconnectRound++, 10u));
      std::this_thread::sleep_for(std::chrono::milliseconds(Cap / 2));
      StatusOr<ServiceClient> R = ServiceClient::connect(Endpoint);
      if (!R.isOk())
        continue; // burn another retry (or give up) next iteration
      Client.emplace(std::move(*R));
      ReconnectRound = 0;
    }

    bool SendBroke = false;
    while (!Pending.empty() && InFlight.size() < Window) {
      size_t I = Pending.front();
      Pending.pop_front();
      if (State[I] != FileState::Unsent)
        continue;
      if (!SendOne(I)) {
        SendBroke = true;
        break;
      }
    }
    if (SendBroke || InFlight.empty())
      continue;

    ServiceResponse Resp;
    bool Closed = false;
    if (Status St = Client->recv(Resp, Closed); !St.isOk()) {
      TransportFailure(/*CleanClose=*/false,
                       "connection lost: " + St.message());
      continue;
    }
    if (Closed) {
      // Clean FIN: the server drained; responses for everything it
      // admitted were flushed first, so the still-unanswered in-flight
      // files were never started. Requeue them.
      TransportFailure(/*CleanClose=*/true, "server closed");
      continue;
    }

    size_t I = size_t(std::atol(Resp.Id.c_str()));
    if (I >= Files.size() || State[I] != FileState::InFlight) {
      std::fprintf(stderr, "error: response for unknown id '%s'\n",
                   Resp.Id.c_str());
      return 1;
    }
    DropInFlight(InFlight, I);
    if (Resp.Status == ServiceResponse::StatusKind::Busy) {
      // Fleet-side congestion (the router found no backend): provably
      // unstarted, so resend freely — on its own budget, not the shed
      // one, and with a short fixed delay (backoff would stretch a
      // failover window into a stall).
      if (++BusyRetries > 1000) {
        FailFile(I, "fleet busy repeatedly, giving up");
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      State[I] = FileState::Unsent;
      Pending.push_back(I);
      continue;
    }
    if (Resp.Status == ServiceResponse::StatusKind::Shed) {
      // Momentary backpressure: ease off and resend this file.
      if (++ShedRetries > 100) {
        FailFile(I, "shed repeatedly, giving up");
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      State[I] = FileState::Unsent;
      Pending.push_back(I);
      continue;
    }
    Results[I] = Resp;
    State[I] = FileState::Done;
    clientLatencyHistogram().record(
        uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - SentAt[I])
                     .count()));
    --Remaining;
  }

  int Exit = 0;
  for (size_t I = 0; I != Files.size(); ++I) {
    if (State[I] == FileState::Done &&
        Results[I].Status == ServiceResponse::StatusKind::Ok) {
      std::fputs(Results[I].Text.c_str(), stdout);
    } else {
      Exit = 1;
    }
  }

  // Per-file failure table: every file that did not compile, and why —
  // nothing is lost silently.
  if (Exit) {
    std::fprintf(stderr, "ursa_batch: %zu file(s) failed:\n", [&] {
      size_t N = 0;
      for (size_t I = 0; I != Files.size(); ++I)
        if (State[I] != FileState::Done ||
            Results[I].Status != ServiceResponse::StatusKind::Ok)
          ++N;
      return N;
    }());
    for (size_t I = 0; I != Files.size(); ++I) {
      if (State[I] == FileState::Done &&
          Results[I].Status == ServiceResponse::StatusKind::Ok)
        continue;
      const char *Kind = State[I] == FileState::Done
                             ? statusName(Results[I].Status)
                             : State[I] == FileState::Failed ? "transport"
                                                             : "unsent";
      const std::string &Why = State[I] == FileState::Done
                                   ? Results[I].Error
                                   : FailReason[I];
      std::fprintf(stderr, "  %-40s %-10s %s\n", Files[I].c_str(), Kind,
                   Why.c_str());
    }
  }

  if ((DoReport || DoShutdown || DoStats || DoHealth) && !Client) {
    StatusOr<ServiceClient> R = ServiceClient::connect(Endpoint);
    if (R.isOk())
      Client.emplace(std::move(*R));
  }
  if (DoReport && Client) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Report;
    R.Id = "report";
    ServiceResponse Resp;
    if (Status St = Client->call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
    std::printf("%s\n", Resp.Text.c_str());
  }
  if (DoStats && Client) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Stats;
    R.Id = "stats";
    if (StatsProm)
      R.StatsFormat = "prometheus";
    R.IncludeFlight = StatsFlight;
    ServiceResponse Resp;
    if (Status St = Client->call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
    std::printf("%s\n", Resp.Text.c_str());
  }
  if (DoHealth && Client) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Health;
    R.Id = "health";
    ServiceResponse Resp;
    if (Status St = Client->call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
    std::printf("%s\n", Resp.Text.c_str());
  }
  if (DoClientStats) {
    std::fprintf(stderr, "ursa_batch client stats:\n");
    for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
      if (SV.Name.rfind("ursa.client", 0) == 0)
        std::fprintf(stderr, "  %-28s %llu\n", SV.Name.c_str(),
                     (unsigned long long)SV.Value);
    obs::HistogramSnapshot H = clientLatencyHistogram().snapshot();
    if (H.Count) {
      std::fprintf(stderr,
                   "  %-28s count %llu  p50 %lluus  p90 %lluus  p99 %lluus  "
                   "max %lluus\n",
                   H.Name.c_str(), (unsigned long long)H.Count,
                   (unsigned long long)H.percentile(0.50),
                   (unsigned long long)H.percentile(0.90),
                   (unsigned long long)H.percentile(0.99),
                   (unsigned long long)H.Max);
    }
  }
  if (DoShutdown && Client) {
    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Shutdown;
    R.Id = "shutdown";
    ServiceResponse Resp;
    if (Status St = Client->call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "error: %s\n", St.str().c_str());
      return 1;
    }
  }
  return Exit;
}
