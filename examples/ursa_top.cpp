//===- examples/ursa_top.cpp - Live compile-service monitor ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A `top`-style live view of a running ursa_served:
//
//   ursa_top --connect ENDPOINT [options]
//
//   --connect ENDPOINT   "unix:PATH", a bare socket path, or
//                        "tcp:HOST:PORT" (URSA_SERVICE_SOCKET honored)
//   --interval MS        polling period (default 1000)
//   --count N            exit after N polls (default: run until ^C or the
//                        server goes away)
//   --once               one poll, no screen clearing (same as --count 1)
//   --flight             also show the slowest retained requests from the
//                        flight recorder, stage by stage
//
// Each poll sends one `stats` request (docs/SERVICE.md) and renders the
// ursa.service_stats.v1 document: uptime, degradation tier, queue
// depth/capacity, in-flight compiles, request rates since the previous
// poll, and the latency histograms' p50/p90/p99/max. With --flight the
// span timelines of the slowest requests are reconstructed beneath.
//
// Pointed at a ursa_router, the document carries a `fleet` section
// (docs/SERVICE.md §11) and two extra tables appear: per-backend state
// (up/down, forwards, ejections, last health) and per-client fair-queue
// standing (weight, quota, queued, admitted, refused).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "service/Client.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::service;

namespace {

double num(const obs::JsonValue *V) { return V && V->isNumber() ? V->Num : 0; }

const obs::JsonValue *at(const obs::JsonValue &Doc, const char *A,
                         const char *B = nullptr) {
  const obs::JsonValue *V = Doc.find(A);
  return V && B ? V->find(B) : V;
}

std::string fmtUs(double Us) {
  char Buf[32];
  if (Us >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Us / 1e6);
  else if (Us >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.1fms", Us / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0fus", Us);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Endpoint;
  if (const char *S = std::getenv("URSA_SERVICE_SOCKET"))
    Endpoint = S;
  unsigned IntervalMs = 1000;
  long Count = -1;
  bool Once = false, ShowFlight = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    if (A == "--connect" && (S = Next()))
      Endpoint = S;
    else if (A == "--interval" && (S = Next()) && std::atoi(S) > 0)
      IntervalMs = unsigned(std::atoi(S));
    else if (A == "--count" && (S = Next()))
      Count = std::atol(S);
    else if (A == "--once")
      Once = true;
    else if (A == "--flight")
      ShowFlight = true;
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    }
  }
  if (Once)
    Count = 1;
  if (Endpoint.empty()) {
    std::fprintf(stderr, "usage: ursa_top --connect ENDPOINT [options]\n"
                         "       (see the header of examples/ursa_top.cpp)\n");
    return 1;
  }

  StatusOr<ServiceClient> COr = ServiceClient::connect(Endpoint);
  if (!COr.isOk()) {
    std::fprintf(stderr, "error: %s\n", COr.status().str().c_str());
    return 1;
  }
  ServiceClient Client = std::move(*COr);

  double PrevDone = -1; // completed+errors+deadline at the previous poll
  auto PrevAt = std::chrono::steady_clock::now();
  for (long Poll = 0; Count < 0 || Poll < Count; ++Poll) {
    if (Poll)
      std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));

    ServiceRequest R;
    R.Op = ServiceRequest::OpKind::Stats;
    R.Id = "top-" + std::to_string(Poll);
    R.IncludeFlight = ShowFlight;
    ServiceResponse Resp;
    if (Status St = Client.call(R, Resp); !St.isOk()) {
      std::fprintf(stderr, "ursa_top: server went away: %s\n",
                   St.str().c_str());
      return Poll ? 0 : 1;
    }

    obs::JsonValue Doc;
    std::string Err;
    if (!obs::parseJson(Resp.Text, Doc, Err)) {
      std::fprintf(stderr, "ursa_top: bad stats document: %s\n", Err.c_str());
      return 1;
    }

    double Done = num(at(Doc, "requests", "completed")) +
                  num(at(Doc, "requests", "errors")) +
                  num(at(Doc, "requests", "deadline_expired"));
    auto Now = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(Now - PrevAt).count();
    double Rate = PrevDone >= 0 && Secs > 0 ? (Done - PrevDone) / Secs : 0;
    PrevDone = Done;
    PrevAt = Now;

    if (!Once)
      std::fputs("\x1b[2J\x1b[H", stdout); // clear screen, home cursor
    std::printf("ursa_top — %s   uptime %.0fs   poll %ldms\n\n",
                Endpoint.c_str(), num(Doc.find("uptime_s")),
                long(IntervalMs));
    std::printf("tier %u  load %.2f  queue %u/%u (peak %u)  in-flight %u  "
                "%.1f req/s\n",
                unsigned(num(at(Doc, "degradation", "tier"))),
                num(at(Doc, "degradation", "load_ewma")),
                unsigned(num(at(Doc, "queue", "depth"))),
                unsigned(num(at(Doc, "queue", "capacity"))),
                unsigned(num(at(Doc, "queue", "depth_peak"))),
                unsigned(num(at(Doc, "requests", "in_flight"))), Rate);
    std::printf("requests: %u received, %u ok, %u errors, %u shed, "
                "%u deadline\n\n",
                unsigned(num(at(Doc, "requests", "received"))),
                unsigned(num(at(Doc, "requests", "completed"))),
                unsigned(num(at(Doc, "requests", "errors"))),
                unsigned(num(at(Doc, "requests", "shed"))),
                unsigned(num(at(Doc, "requests", "deadline_expired"))));

    if (const obs::JsonValue *Hs = Doc.find("histograms");
        Hs && Hs->isArray() && !Hs->Arr.empty()) {
      Table Tbl({"histogram", "count", "p50", "p90", "p99", "max"});
      for (const obs::JsonValue &H : Hs->Arr) {
        const obs::JsonValue *Name = H.find("name");
        Tbl.addRow({Name && Name->isString() ? Name->Str : "?",
                    std::to_string(uint64_t(num(H.find("count")))),
                    fmtUs(num(H.find("p50_us"))), fmtUs(num(H.find("p90_us"))),
                    fmtUs(num(H.find("p99_us"))),
                    fmtUs(num(H.find("max_us")))});
      }
      Tbl.print(std::cout);
      std::cout.flush();
    }

    if (const obs::JsonValue *Fleet = Doc.find("fleet");
        Fleet && Fleet->isObject()) {
      std::printf("\nfleet: %u/%u backends up   router: %u forwarded, "
                  "%u failovers, %u busy, %u shed\n",
                  unsigned(num(Fleet->find("backends_up"))),
                  unsigned(num(Fleet->find("backends_total"))),
                  unsigned(num(at(*Fleet, "router", "completed"))),
                  unsigned(num(at(*Fleet, "router", "failovers"))),
                  unsigned(num(at(*Fleet, "router", "busy_answers"))),
                  unsigned(num(at(*Fleet, "router", "shed_quota")) +
                           num(at(*Fleet, "router", "shed_share")) +
                           num(at(*Fleet, "router", "shed_displaced"))));
      if (const obs::JsonValue *Bs = Fleet->find("backends");
          Bs && Bs->isArray() && !Bs->Arr.empty()) {
        Table Tbl({"backend", "state", "forwarded", "ejections", "readmits",
                   "health"});
        for (const obs::JsonValue &B : Bs->Arr) {
          const obs::JsonValue *Name = B.find("name");
          const obs::JsonValue *Up = B.find("up");
          const obs::JsonValue *LH = B.find("last_health");
          Tbl.addRow({Name && Name->isString() ? Name->Str : "?",
                      Up && Up->B ? "up" : "DOWN",
                      std::to_string(uint64_t(num(B.find("forwarded")))),
                      std::to_string(uint64_t(num(B.find("ejections")))),
                      std::to_string(uint64_t(num(B.find("readmissions")))),
                      LH && LH->isString() && !LH->Str.empty() ? LH->Str
                                                               : "?"});
        }
        Tbl.print(std::cout);
      }
      if (const obs::JsonValue *Cs = Fleet->find("clients");
          Cs && Cs->isArray() && !Cs->Arr.empty()) {
        Table Tbl({"client", "weight", "quota", "queued", "admitted",
                   "refused"});
        for (const obs::JsonValue &Cl : Cs->Arr) {
          const obs::JsonValue *Name = Cl.find("name");
          std::string N = Name && Name->isString() ? Name->Str : "?";
          Tbl.addRow({N.empty() ? "(anonymous)" : N,
                      std::to_string(uint64_t(num(Cl.find("weight")))),
                      std::to_string(uint64_t(num(Cl.find("quota")))),
                      std::to_string(uint64_t(num(Cl.find("queued")))),
                      std::to_string(uint64_t(num(Cl.find("admitted")))),
                      std::to_string(uint64_t(num(Cl.find("refused"))))});
        }
        Tbl.print(std::cout);
      }
      std::cout.flush();
    }

    if (ShowFlight) {
      const obs::JsonValue *Recs = at(Doc, "flight", "records");
      if (Recs && Recs->isArray()) {
        // The slowest retained-timeline requests, slowest first.
        std::vector<const obs::JsonValue *> Slow;
        for (const obs::JsonValue &Rec : Recs->Arr)
          if (const obs::JsonValue *Sp = Rec.find("spans");
              Sp && Sp->isArray() && !Sp->Arr.empty())
            Slow.push_back(&Rec);
        std::sort(Slow.begin(), Slow.end(),
                  [](const obs::JsonValue *A, const obs::JsonValue *B) {
                    return num(A->find("total_ms")) > num(B->find("total_ms"));
                  });
        if (Slow.size() > 5)
          Slow.resize(5);
        if (!Slow.empty())
          std::printf("\nslowest retained requests:\n");
        for (const obs::JsonValue *Rec : Slow) {
          const obs::JsonValue *Id = Rec->find("trace_id");
          std::printf("  %s  %s  total %.2fms (queue %.2fms)  tier %u\n",
                      Id && Id->isString() ? Id->Str.c_str() : "?",
                      Rec->find("status") && Rec->find("status")->isString()
                          ? Rec->find("status")->Str.c_str()
                          : "?",
                      num(Rec->find("total_ms")), num(Rec->find("queue_ms")),
                      unsigned(num(Rec->find("degrade_tier"))));
          for (const obs::JsonValue &Sp : Rec->find("spans")->Arr) {
            const obs::JsonValue *Name = Sp.find("name");
            std::printf("    %-24s %s\n",
                        Name && Name->isString() ? Name->Str.c_str() : "?",
                        fmtUs(num(Sp.find("dur_us"))).c_str());
          }
        }
      }
    }
    std::fflush(stdout);
  }
  return 0;
}
