//===- examples/ursa_served.cpp - The persistent compile server -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A persistent compile service over a Unix-domain or TCP socket:
//
//   ursa_served --socket PATH | --tcp [HOST:]PORT [options]
//
//   --socket PATH       Unix socket file to listen on (also
//                       URSA_SERVICE_SOCKET; "unix:PATH" and "tcp:..."
//                       endpoint strings are accepted here too)
//   --tcp [HOST:]PORT   listen on TCP instead (loopback by default;
//                       port 0 = kernel-assigned, printed at startup)
//   --workers N         concurrent compile workers (URSA_SERVICE_WORKERS,
//                       default 2)
//   --queue-depth N     bounded queue; arrivals beyond it are shed
//                       (URSA_SERVICE_QUEUE_DEPTH, default 64)
//   --cache-size N      measurement-cache entries per machine
//                       (URSA_SERVICE_CACHE_SIZE, default 1024)
//   --no-cache          disable cross-request measurement reuse
//                       (URSA_SERVICE_CACHE=0)
//   --cache-dir DIR     persist measurement caches to DIR as crash-safe
//                       snapshot+journal images; restarts load them warm
//                       (URSA_SERVICE_CACHE_DIR)
//   --snapshot-every N  journal appends between periodic snapshots
//                       (URSA_SERVICE_SNAPSHOT_EVERY, default 32)
//   --idle-timeout MS   reap connections idle this long
//                       (URSA_SERVICE_IDLE_TIMEOUT_MS, default never)
//   --io-timeout MS     per-operation socket deadline mid-frame
//                       (URSA_SERVICE_IO_TIMEOUT_MS, default unbounded)
//   --no-degrade        disable graceful-degradation tiers
//                       (URSA_SERVICE_DEGRADE=0)
//   --degraded-budget MS tier-3 budget clamp
//                       (URSA_SERVICE_DEGRADED_BUDGET_MS, default 250)
//   --time-budget MS    default per-compile wall-clock budget
//                       (URSA_SERVICE_TIME_BUDGET_MS, default unlimited)
//   --test-hooks        honor the per-request stall test hook
//                       (URSA_SERVICE_TEST_HOOKS)
//   --report-out FILE   write the final ursa.service_report.v1 document
//                       to FILE on shutdown
//   --flight-size N     flight-recorder ring size
//                       (URSA_SERVICE_FLIGHT_SIZE, default 256)
//   --flight-slow N     successful requests keeping full span timelines
//                       (URSA_SERVICE_FLIGHT_SLOW, default 8)
//   --flight-dump FILE  dump the flight recorder to FILE on shutdown
//                       (URSA_FLIGHT_DUMP)
//
// Live observability: the `stats` verb returns ursa.service_stats.v1
// (or Prometheus text) with latency histograms and optionally the
// flight-recorder ring; `health` is a cheap pressure probe. `ursa_top`
// renders stats as a refreshing table; `ursa_batch --stats` fetches one
// document.
//
// The server drains on a `shutdown` request: queued compiles finish and
// their responses flush before the process exits. Protocol and report
// schemas are documented in docs/SERVICE.md; ursa_batch is the matching
// client.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace ursa;
using namespace ursa::service;

int main(int Argc, char **Argv) {
  ServiceConfig Cfg = ServiceConfig::fromEnv();
  std::string Endpoint;
  if (const char *S = std::getenv("URSA_SERVICE_SOCKET"))
    Endpoint = S;
  std::string ReportOut;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    if (A == "--socket" && (S = Next()))
      Endpoint = S;
    else if (A == "--tcp" && (S = Next()))
      Endpoint = std::string("tcp:") + S;
    else if (A == "--workers" && (S = Next()) && std::atoi(S) > 0)
      Cfg.Workers = unsigned(std::atoi(S));
    else if (A == "--queue-depth" && (S = Next()) && std::atoi(S) > 0)
      Cfg.QueueDepth = unsigned(std::atoi(S));
    else if (A == "--cache-size" && (S = Next()) && std::atoi(S) > 0)
      Cfg.CacheSize = unsigned(std::atoi(S));
    else if (A == "--no-cache")
      Cfg.CacheEnabled = false;
    else if (A == "--cache-dir" && (S = Next()))
      Cfg.CacheDir = S;
    else if (A == "--snapshot-every" && (S = Next()))
      Cfg.SnapshotEvery = unsigned(std::atoi(S));
    else if (A == "--idle-timeout" && (S = Next()))
      Cfg.IdleTimeoutMs = unsigned(std::atoi(S));
    else if (A == "--io-timeout" && (S = Next()))
      Cfg.IoTimeoutMs = unsigned(std::atoi(S));
    else if (A == "--no-degrade")
      Cfg.DegradeEnabled = false;
    else if (A == "--degraded-budget" && (S = Next()))
      Cfg.DegradedTimeBudgetMs = unsigned(std::atoi(S));
    else if (A == "--time-budget" && (S = Next()))
      Cfg.DefaultTimeBudgetMs = unsigned(std::atoi(S));
    else if (A == "--test-hooks")
      Cfg.EnableTestHooks = true;
    else if (A == "--report-out" && (S = Next()))
      ReportOut = S;
    else if (A == "--flight-size" && (S = Next()))
      Cfg.FlightSize = unsigned(std::atoi(S));
    else if (A == "--flight-slow" && (S = Next()))
      Cfg.FlightSlowN = unsigned(std::atoi(S));
    else if (A == "--flight-dump" && (S = Next()))
      Cfg.FlightDumpPath = S;
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    }
  }
  if (Endpoint.empty()) {
    std::fprintf(stderr,
                 "usage: ursa_served --socket PATH | --tcp [HOST:]PORT "
                 "[options]\n"
                 "       (see the header of examples/ursa_served.cpp)\n");
    return 1;
  }

  Server Srv(Endpoint, Cfg);
  if (Status St = Srv.start(); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.str().c_str());
    return 1;
  }
  if (Srv.port())
    std::fprintf(stderr, "ursa_served: listening on tcp port %u", Srv.port());
  else
    std::fprintf(stderr, "ursa_served: listening on %s", Endpoint.c_str());
  std::fprintf(stderr,
               " (%u workers, queue %u, cache %s/%u%s%s)\n",
               Cfg.Workers, Cfg.QueueDepth, Cfg.CacheEnabled ? "on" : "off",
               Cfg.CacheSize, Cfg.CacheDir.empty() ? "" : ", persisted to ",
               Cfg.CacheDir.c_str());
  Srv.run();

  std::string Report = Srv.service().reportJSON();
  if (!ReportOut.empty()) {
    std::ofstream Out(ReportOut);
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write report to '%s'\n",
                   ReportOut.c_str());
    } else {
      Out << Report << "\n";
    }
  }
  std::fprintf(stderr, "ursa_served: shut down\n");
  return 0;
}
