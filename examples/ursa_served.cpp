//===- examples/ursa_served.cpp - The persistent compile server -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A persistent compile service over a Unix-domain socket:
//
//   ursa_served --socket PATH [options]
//
//   --socket PATH       socket file to listen on (required; also
//                       URSA_SERVICE_SOCKET)
//   --workers N         concurrent compile workers (URSA_SERVICE_WORKERS,
//                       default 2)
//   --queue-depth N     bounded queue; arrivals beyond it are shed
//                       (URSA_SERVICE_QUEUE_DEPTH, default 64)
//   --cache-size N      measurement-cache entries per machine
//                       (URSA_SERVICE_CACHE_SIZE, default 1024)
//   --no-cache          disable cross-request measurement reuse
//                       (URSA_SERVICE_CACHE=0)
//   --time-budget MS    default per-compile wall-clock budget
//                       (URSA_SERVICE_TIME_BUDGET_MS, default unlimited)
//   --test-hooks        honor the per-request stall test hook
//                       (URSA_SERVICE_TEST_HOOKS)
//   --report-out FILE   write the final ursa.service_report.v1 document
//                       to FILE on shutdown
//
// The server drains on a `shutdown` request: queued compiles finish and
// their responses flush before the process exits. Protocol and report
// schemas are documented in docs/SERVICE.md; ursa_batch is the matching
// client.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace ursa;
using namespace ursa::service;

int main(int Argc, char **Argv) {
  ServiceConfig Cfg = ServiceConfig::fromEnv();
  std::string SocketPath;
  if (const char *S = std::getenv("URSA_SERVICE_SOCKET"))
    SocketPath = S;
  std::string ReportOut;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    if (A == "--socket" && (S = Next()))
      SocketPath = S;
    else if (A == "--workers" && (S = Next()) && std::atoi(S) > 0)
      Cfg.Workers = unsigned(std::atoi(S));
    else if (A == "--queue-depth" && (S = Next()) && std::atoi(S) > 0)
      Cfg.QueueDepth = unsigned(std::atoi(S));
    else if (A == "--cache-size" && (S = Next()) && std::atoi(S) > 0)
      Cfg.CacheSize = unsigned(std::atoi(S));
    else if (A == "--no-cache")
      Cfg.CacheEnabled = false;
    else if (A == "--time-budget" && (S = Next()))
      Cfg.DefaultTimeBudgetMs = unsigned(std::atoi(S));
    else if (A == "--test-hooks")
      Cfg.EnableTestHooks = true;
    else if (A == "--report-out" && (S = Next()))
      ReportOut = S;
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr,
                 "usage: ursa_served --socket PATH [options]\n"
                 "       (see the header of examples/ursa_served.cpp)\n");
    return 1;
  }

  Server Srv(SocketPath, Cfg);
  if (Status St = Srv.start(); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.str().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "ursa_served: listening on %s (%u workers, queue %u, "
               "cache %s/%u)\n",
               SocketPath.c_str(), Cfg.Workers, Cfg.QueueDepth,
               Cfg.CacheEnabled ? "on" : "off", Cfg.CacheSize);
  Srv.run();

  std::string Report = Srv.service().reportJSON();
  if (!ReportOut.empty()) {
    std::ofstream Out(ReportOut);
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write report to '%s'\n",
                   ReportOut.c_str());
    } else {
      Out << Report << "\n";
    }
  }
  std::fprintf(stderr, "ursa_served: shut down\n");
  return 0;
}
