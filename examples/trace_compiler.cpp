//===- examples/trace_compiler.cpp - Whole-function compilation -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The full stack at function granularity: parse a control-flow function,
// unroll its loops, form Fisher-style traces, compile every trace with
// URSA, and execute the result under trace-scheduling semantics —
// checked against the CFG interpreter.
//
//   $ ./trace_compiler [function.cfg] [--unroll K] [--fus N] [--regs N]
//
// Without a file it compiles a built-in sum-of-squares loop.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"
#include "cfg/CFGParser.h"
#include "cfg/Unroll.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ursa;

namespace {

const char *DefaultSource = R"(
func squares {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  z0 = ldi 0
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.95 : exit
block exit:
  ret
}
)";

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  unsigned Unroll = 4, Fus = 4, Regs = 12;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--unroll") && I + 1 < argc)
      Unroll = unsigned(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--fus") && I + 1 < argc)
      Fus = unsigned(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--regs") && I + 1 < argc)
      Regs = unsigned(std::atoi(argv[++I]));
    else
      Path = argv[I];
  }

  std::string Source = DefaultSource;
  if (!Path.empty()) {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << File.rdbuf();
    Source = Buf.str();
  }

  CFGFunction F;
  std::string Err;
  if (!parseCFG(Source, F, Err)) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("function '%s': %u blocks, %zu self-loops\n",
              F.name().c_str(), F.numBlocks(), findSelfLoops(F).size());

  CFGFunction U = unrollLoops(F, Unroll);
  MachineModel M = MachineModel::homogeneous(Fus, Regs);
  CompiledCFG C = compileCFGWithURSA(U, M);
  if (!C.Ok) {
    std::fprintf(stderr, "compile error: %s\n", C.Error.c_str());
    return 1;
  }
  std::printf("unrolled x%u -> %zu traces on %s (%u words, %u spill ops)\n\n",
              Unroll, C.Traces.Traces.size(), M.describe().c_str(),
              C.TotalWords, C.TotalSpills);
  for (unsigned TI = 0; TI != C.Traces.Traces.size(); ++TI) {
    const FormedTrace &FT = C.Traces.Traces[TI];
    std::printf("trace %u: %zu blocks, %u instrs, %zu side exits, "
                "%u VLIW words\n",
                TI, FT.Blocks.size(), FT.Code.size(), FT.SideExits.size(),
                C.Programs[TI].numWords());
  }

  // Run it: default inputs drive the built-in loop; user functions run
  // from an empty environment.
  MemoryState In;
  if (Path.empty())
    In["i"] = Value::ofInt(40);
  CFGExecResult Want = interpretCFG(U, In);
  CFGExecResult Got = runCompiledCFG(U, C, In);
  if (!Want.Ok || !Got.Ok) {
    std::fprintf(stderr, "execution error: %s\n",
                 (!Want.Ok ? Want.Error : Got.Error).c_str());
    return 1;
  }
  std::printf("\nexecuted %zu blocks in %u machine cycles; "
              "memory matches the interpreter: %s\n",
              Got.Path.size(), Got.Cycles,
              Got.Memory == Want.Memory ? "yes" : "NO");
  if (Path.empty())
    std::printf("sum of squares 1..40 = %lld\n",
                (long long)Got.Memory["acc"].I);
  return Got.Memory == Want.Memory ? 0 : 1;
}
