//===- examples/measure_tool.cpp - Requirements inspector -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A command-line inspector for URSA's measurement phase: reads a trace in
// the textual IR (from a file, or the paper's Figure 2 example when run
// without arguments), prints the worst-case requirements, the minimum
// chain decomposition per resource, the excessive chain sets for a given
// machine, and optionally the dependence DAG as Graphviz.
//
//   $ ./measure_tool [trace.ursa] [--fus N] [--regs N] [--dot]
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "support/Dot.h"
#include "ursa/Measure.h"
#include "workload/Kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace ursa;

int main(int argc, char **argv) {
  std::string Path;
  unsigned Fus = 4, Regs = 8;
  bool Dot = false;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--fus") && I + 1 < argc)
      Fus = unsigned(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--regs") && I + 1 < argc)
      Regs = unsigned(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--dot"))
      Dot = true;
    else
      Path = argv[I];
  }

  Trace T("input");
  if (Path.empty()) {
    T = figure2Trace();
    std::printf("(no input file; using the paper's Figure 2 example)\n\n");
  } else {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << File.rdbuf();
    std::string Err;
    if (!parseTrace(Buf.str(), T, Err)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
  }

  DependenceDAG D = buildDAG(T);
  if (Dot) {
    DotWriter W("dag");
    D.toDot(W);
    W.print(std::cout);
    return 0;
  }

  DAGAnalysis A(D);
  HammockForest HF(D, A);
  MachineModel M = MachineModel::homogeneous(Fus, Regs);
  std::printf("%u instructions, %u dependence edges, critical path %u, "
              "%u hammocks\n\n",
              T.size(), D.numEdges(), A.criticalPathLength(), HF.size());

  for (const auto &[Res, Limit] : machineResources(M)) {
    Measurement Ms = measureResource(D, A, HF, Res);
    std::printf("%s: worst case %u, machine has %u%s\n",
                Ms.Res.describe().c_str(), Ms.MaxRequired, Limit,
                Ms.MaxRequired > Limit ? "  ** EXCESS **" : "");
    std::printf("  minimum decomposition (%zu chains):\n",
                Ms.Chains.Chains.size());
    for (const auto &Chain : Ms.Chains.Chains) {
      std::printf("   ");
      for (unsigned N : Chain)
        std::printf(" n%u", N);
      std::printf("\n");
    }
    for (const ExcessiveChainSet &E : findExcessiveSets(Ms, A, HF, Limit)) {
      std::printf("  excessive set in hammock %u (limit %u):\n", E.HammockIdx,
                  E.Limit);
      for (const auto &Sub : E.Subchains) {
        std::printf("   ");
        for (unsigned N : Sub)
          std::printf(" n%u", N);
        std::printf("\n");
      }
      break; // innermost only
    }
  }
  std::printf("\nNode key: n2 is the first instruction "
              "(n0/n1 are virtual entry/exit):\n");
  for (unsigned Idx = 0; Idx != T.size(); ++Idx)
    std::printf("  n%-3u %s\n", DependenceDAG::nodeOf(Idx),
                T.instr(Idx).str(&T.symbolNames()).c_str());
  return 0;
}
