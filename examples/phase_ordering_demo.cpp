//===- examples/phase_ordering_demo.cpp - The paper's motivation ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 1 of the paper in one table: compile the same unrolled kernels
// with the three classic phase orderings and with URSA, on a machine
// where registers and functional units are both scarce, and compare
// schedule length and spill traffic.
//
//   $ ./phase_ordering_demo [fus] [regs]
//
//===----------------------------------------------------------------------===//

#include "sched/Pipelines.h"
#include "support/Table.h"
#include "ursa/Compiler.h"
#include "workload/Kernels.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace ursa;

int main(int argc, char **argv) {
  unsigned Fus = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
  unsigned Regs = argc > 2 ? unsigned(std::atoi(argv[2])) : 6;
  MachineModel M = MachineModel::homogeneous(Fus, Regs);
  std::printf("machine: %s  (cycles | spill ops)\n\n", M.describe().c_str());

  Table Tbl({"kernel", "prepass", "postpass", "integrated", "ursa"});
  for (auto &[Name, T] : kernelSuite()) {
    auto Cell = [](const CompileResult &R) {
      if (!R.Ok)
        return std::string("fail");
      return Table::fmt(uint64_t(R.Cycles)) + " | " +
             Table::fmt(uint64_t(R.SpillOps));
    };
    CompileResult Pre = compilePrepass(T, M);
    CompileResult Post = compilePostpass(T, M);
    CompileResult Int = compileIntegrated(T, M);
    URSACompileResult U = compileURSA(T, M);
    Tbl.addRow({Name, Cell(Pre), Cell(Post), Cell(Int), Cell(U.Compile)});
  }
  Tbl.print(std::cout);
  std::printf("\nLower is better. Postpass pays in cycles (register reuse "
              "edges shackle the\nscheduler); prepass pays in spills "
              "(allocation inherits a register-oblivious\nschedule); URSA "
              "allocates both resources before assigning either.\n");
  return 0;
}
