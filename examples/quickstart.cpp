//===- examples/quickstart.cpp - URSA in one page --------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The minimal end-to-end tour: write a trace, measure its worst-case
// resource requirements, run URSA for a small VLIW machine, inspect the
// emitted wide words, and execute them against the reference interpreter.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ursa/Compiler.h"
#include "ursa/Measure.h"
#include "vliw/Simulator.h"

#include <cstdio>

using namespace ursa;

int main() {
  // A little block computing two polynomials' difference.
  const char *Source = "x  = load x\n"
                       "a  = load a\n"
                       "b  = load b\n"
                       "c  = load c\n"
                       "x2 = mul x, x\n"
                       "t0 = mul a, x2\n"
                       "t1 = mul b, x\n"
                       "p  = add t0, t1\n"
                       "q  = add p, c\n"
                       "r  = sub q, x2\n"
                       "store out, r\n";
  Trace T = parseTraceOrDie(Source, "quickstart");

  // Phase 1: what would this block need, over every legal schedule?
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  MachineModel M = MachineModel::homogeneous(2, 4);
  std::printf("machine: %s\n", M.describe().c_str());
  for (const Measurement &Ms : measureAll(D, A, HF, M))
    std::printf("worst-case %-9s requirement: %u\n",
                Ms.Res.describe().c_str(), Ms.MaxRequired);

  // Phases 1-3: the full URSA pipeline.
  URSACompileResult R = compileURSA(T, M);
  if (!R.Compile.Ok) {
    std::fprintf(stderr, "compilation failed: %s\n", R.Compile.Error.c_str());
    return 1;
  }
  std::printf("\nURSA applied %u transformation rounds "
              "(%u sequence edges, %u spills)\n",
              R.AllocRounds, R.AllocSeqEdges, R.AllocSpills);
  std::printf("final requirements:");
  for (unsigned F : R.FinalRequired)
    std::printf(" %u", F);
  std::printf("  -> fits machine: %s\n", R.AllocWithinLimits ? "yes" : "no");

  std::printf("\nVLIW code (%u cycles, %.0f%% slot utilization):\n",
              R.Compile.Cycles, 100.0 * R.Compile.Utilization);
  std::printf("%s", R.Compile.Prog->str().c_str());

  // Run it and check against the sequential interpreter.
  MemoryState In;
  In["x"] = Value::ofInt(3);
  In["a"] = Value::ofInt(2);
  In["b"] = Value::ofInt(-1);
  In["c"] = Value::ofInt(7);
  ExecResult Want = interpret(T, In);
  SimResult Got = simulate(*R.Compile.Prog, In);
  if (!Got.Ok) {
    std::fprintf(stderr, "simulation failed: %s\n", Got.Error.c_str());
    return 1;
  }
  std::printf("\ninterpreter says out = %lld, VLIW says out = %lld (%s)\n",
              (long long)Want.Memory["out"].I,
              (long long)Got.Exec.Memory["out"].I,
              Got.Exec == Want ? "match" : "MISMATCH");
  return Got.Exec == Want ? 0 : 1;
}
