//===- examples/ursa_router.cpp - The compile-fleet front end -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A sharding router in front of N `ursa_served` backends. Clients speak
// the ordinary service protocol to the router; the router forwards each
// compile to its shard's backend by consistent hashing on (machine,
// function), fails over under at-most-once rules when a backend dies,
// and aggregates the fleet's stats/health into single documents:
//
//   ursa_router --socket PATH | --tcp [HOST:]PORT
//               --backend ENDPOINT [--backend ENDPOINT ...] [options]
//
//   --socket PATH        Unix socket file to listen on ("unix:PATH" and
//                        "tcp:..." endpoint strings are accepted too)
//   --tcp [HOST:]PORT    listen on TCP (loopback by default; port 0 =
//                        kernel-assigned, printed at startup)
//   --backend EP         one backend endpoint; repeatable. NAME=EP names
//                        the backend (default: the endpoint itself)
//   --workers N          forwarding threads (default 4; these block on
//                        backend I/O, not CPU)
//   --queue-depth N      fair-queue capacity across all clients
//                        (default 256)
//   --vnodes N           ring points per backend (default 64)
//   --client NAME=W[:Q]  fair-queue weight (and optional quota) for
//                        client NAME; repeatable
//   --default-weight W   weight for unregistered clients (default 1)
//   --default-quota Q    quota for unregistered clients (default none)
//   --probe-interval MS  health-probe cadence per backend (default 200)
//   --probe-timeout MS   per-probe socket deadline (default 500)
//   --fail-threshold N   consecutive probe failures to eject (default 2)
//   --io-timeout MS      per-operation deadline on backend connections
//   --idle-timeout MS    reap idle client connections
//
// The router is protocol-invisible: `ursa_batch --connect` pointed at a
// router fronting one backend prints byte-identical output to a direct
// connection. docs/SERVICE.md §11 documents the topology.
//
//===----------------------------------------------------------------------===//

#include "fleet/RouterService.h"
#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ursa;
using namespace ursa::fleet;

/// Parses "NAME=W" or "NAME=W:Q" into a client policy entry.
static bool parseClientFlag(const std::string &Arg, std::string &Name,
                            ClientPolicy &P) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Name = Arg.substr(0, Eq);
  std::string Rest = Arg.substr(Eq + 1);
  size_t Colon = Rest.find(':');
  std::string W = Colon == std::string::npos ? Rest : Rest.substr(0, Colon);
  if (W.empty() || std::atoi(W.c_str()) <= 0)
    return false;
  P.Weight = unsigned(std::atoi(W.c_str()));
  P.Quota = 0;
  if (Colon != std::string::npos) {
    std::string Q = Rest.substr(Colon + 1);
    if (Q.empty() || std::atoi(Q.c_str()) <= 0)
      return false;
    P.Quota = unsigned(std::atoi(Q.c_str()));
  }
  return true;
}

int main(int Argc, char **Argv) {
  RouterConfig Cfg;
  service::TransportOpts Transport;
  std::string Endpoint;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *S = nullptr;
    if (A == "--socket" && (S = Next()))
      Endpoint = S;
    else if (A == "--tcp" && (S = Next()))
      Endpoint = std::string("tcp:") + S;
    else if (A == "--backend" && (S = Next())) {
      BackendConfig B;
      // NAME=ENDPOINT names the backend; a bare endpoint names itself.
      // The '=' test must not trip on "tcp:host:port" (no '=' there).
      std::string Arg = S;
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos && Eq > 0) {
        B.Name = Arg.substr(0, Eq);
        B.Endpoint = Arg.substr(Eq + 1);
      } else {
        B.Endpoint = Arg;
      }
      if (B.Endpoint.empty()) {
        std::fprintf(stderr, "empty backend endpoint in '%s'\n", S);
        return 1;
      }
      Cfg.Backends.push_back(std::move(B));
    } else if (A == "--workers" && (S = Next()) && std::atoi(S) > 0)
      Cfg.Workers = unsigned(std::atoi(S));
    else if (A == "--queue-depth" && (S = Next()) && std::atoi(S) > 0)
      Cfg.QueueDepth = unsigned(std::atoi(S));
    else if (A == "--vnodes" && (S = Next()) && std::atoi(S) > 0)
      Cfg.VirtualNodes = unsigned(std::atoi(S));
    else if (A == "--client" && (S = Next())) {
      std::string Name;
      ClientPolicy P;
      if (!parseClientFlag(S, Name, P)) {
        std::fprintf(stderr,
                     "bad --client '%s' (expected NAME=WEIGHT[:QUOTA])\n", S);
        return 1;
      }
      Cfg.Clients[Name] = P;
    } else if (A == "--default-weight" && (S = Next()) && std::atoi(S) > 0)
      Cfg.DefaultClient.Weight = unsigned(std::atoi(S));
    else if (A == "--default-quota" && (S = Next()) && std::atoi(S) > 0)
      Cfg.DefaultClient.Quota = unsigned(std::atoi(S));
    else if (A == "--probe-interval" && (S = Next()) && std::atoi(S) > 0)
      Cfg.ProbeIntervalMs = unsigned(std::atoi(S));
    else if (A == "--probe-timeout" && (S = Next()) && std::atoi(S) > 0)
      Cfg.ProbeTimeoutMs = unsigned(std::atoi(S));
    else if (A == "--fail-threshold" && (S = Next()) && std::atoi(S) > 0)
      Cfg.FailThreshold = unsigned(std::atoi(S));
    else if (A == "--io-timeout" && (S = Next()))
      Cfg.IoTimeoutMs = unsigned(std::atoi(S));
    else if (A == "--idle-timeout" && (S = Next()))
      Transport.IdleTimeoutMs = unsigned(std::atoi(S));
    else {
      std::fprintf(stderr, "unknown or incomplete option '%s'\n", A.c_str());
      return 1;
    }
  }
  Transport.IoTimeoutMs = Cfg.IoTimeoutMs;
  if (Endpoint.empty() || Cfg.Backends.empty()) {
    std::fprintf(stderr,
                 "usage: ursa_router --socket PATH | --tcp [HOST:]PORT\n"
                 "                   --backend ENDPOINT [--backend ...] "
                 "[options]\n"
                 "       (see the header of examples/ursa_router.cpp)\n");
    return 1;
  }

  RouterService Router(Cfg);
  if (Status St = Router.start(); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.str().c_str());
    return 1;
  }

  service::Server Srv(Endpoint, Router, Transport);
  if (Status St = Srv.start(); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.str().c_str());
    return 1;
  }
  if (Srv.port())
    std::fprintf(stderr, "ursa_router: listening on tcp port %u", Srv.port());
  else
    std::fprintf(stderr, "ursa_router: listening on %s", Endpoint.c_str());
  std::fprintf(stderr, " (%zu backends, %u workers, queue %u, %u vnodes)\n",
               Cfg.Backends.size(), Cfg.Workers, Cfg.QueueDepth,
               Cfg.VirtualNodes);
  Srv.run();
  std::fprintf(stderr, "ursa_router: shut down\n");
  return 0;
}
