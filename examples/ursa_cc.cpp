//===- examples/ursa_cc.cpp - The command-line compiler driver ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A small but complete compiler driver over the whole library:
//
//   ursa_cc [input] [options]
//
//   input                 a .cfg function ("func ... { block ...: }") or a
//                         straight-line trace in the IR syntax; built-in
//                         demo function when omitted
//   --machine FxR         homogeneous machine, e.g. --machine 4x8
//   --classed i,f,m,g,p   classed machine (int/float/mem FUs, GPRs, FPRs)
//   --latencies i,f,m     operation latencies (default 1,1,1)
//   --pipelined           initiation-interval-1 functional units
//   --pipeline NAME       ursa | prepass | postpass | integrated
//   --order NAME          regs | fus | integrated (URSA phase order)
//   --unroll K            unroll self-loops K times before trace formation
//   --auto-unroll         pick the unroll factor by calibration (URSA only)
//   --emit WHAT           asm | dot | stats   (default: asm + stats)
//   --set NAME=INT        initial memory value (repeatable)
//   --run                 execute and print the final memory state
//   --verify LEVEL        off | basic | full phase-boundary verification
//                         (URSA only; overrides URSA_VERIFY; diagnostics
//                         go to stderr — see docs/ROBUSTNESS.md)
//   --guaranteed-fit      force residual excess to fit via the
//                         sequentialize-and-spill fallback (URSA only)
//   --time-budget MS      wall-clock budget for the allocation loop
//   --threads N           worker threads for proposal evaluation in the
//                         URSA driver (default: URSA_THREADS, else 1);
//                         results are identical across thread counts
//   --beam K              beam width for the driver's transformation
//                         search (default: URSA_BEAM, else 1 = the greedy
//                         keep-one loop, bit-for-bit); see
//                         docs/PERFORMANCE.md
//   --portfolio           race phase orderings + seeded tie-breaks and
//                         keep the best allocation (URSA only)
//   --incremental         score edge-only proposals through the delta
//   --no-incremental      measurement engine / always rebuild in full
//                         (default: URSA_INCREMENTAL, else on); results
//                         are identical either way
//   --cache-size N        measurement-cache entries in the URSA driver
//   --closure MODE        dense | blocked | auto closure representation
//                         (overrides URSA_CLOSURE; auto switches on size)
//                         (default: URSA_CACHE_SIZE, else 4)
//   --report              print the human-readable allocation report
//   --report-json         print the machine-readable allocation report
//                         (schema ursa.allocation_report.v1, or
//                         ursa.function_report.v1 for CFG inputs) to
//                         stdout and exit; URSA pipeline only
//   --trace-out FILE      write a Chrome-trace-event JSON timeline of the
//                         compilation (load in ui.perfetto.dev); see
//                         docs/OBSERVABILITY.md
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"
#include "graph/Closure.h"
#include "graph/DAGBuilder.h"
#include "cfg/CFGParser.h"
#include "cfg/SoftwarePipeline.h"
#include "cfg/Unroll.h"
#include "ir/Parser.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "support/Dot.h"
#include "ursa/Compiler.h"
#include "ursa/Report.h"
#include "vliw/Simulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace ursa;

namespace {

const char *DemoSource = R"(
func demo {
block entry:
  z = ldi 0
  store acc, z
  jmp loop
block loop:
  a  = load acc
  i  = load i
  p  = mul i, i
  a2 = add a, p
  k  = ldi 1
  i2 = sub i, k
  z0 = ldi 0
  store acc, a2
  store i, i2
  c  = cmplt z0, i2
  br c ? loop:0.9 : exit
block exit:
  ret
}
)";

struct Options {
  std::string Input;
  unsigned Fus = 4, Regs = 8;
  bool Classed = false;
  unsigned IntFus = 2, FltFus = 1, MemFus = 1, Gprs = 8, Fprs = 4;
  unsigned LatInt = 1, LatFlt = 1, LatMem = 1;
  bool Pipelined = false;
  std::string Pipeline = "ursa";
  std::string Order = "regs";
  unsigned Unroll = 1;
  bool AutoUnroll = false;
  bool EmitAsm = true, EmitDot = false, EmitStats = true;
  bool Report = false;
  bool ReportJson = false;
  std::string TraceOut;
  bool Run = false;
  std::string Verify; ///< empty = keep the URSA_VERIFY default
  bool GuaranteedFit = false;
  unsigned TimeBudgetMs = 0;
  unsigned Threads = 0;   ///< 0 = URSA_THREADS default
  unsigned Beam = 0;      ///< 0 = URSA_BEAM default (1 = greedy)
  bool Portfolio = false;
  int Incremental = -1;   ///< -1 = URSA_INCREMENTAL default
  unsigned CacheSize = 0; ///< 0 = URSA_CACHE_SIZE default
  std::string ClosureModeArg; ///< empty = keep the URSA_CLOSURE default
  MemoryState Inputs;
};

bool parseUints(const char *S, std::vector<unsigned> &Out, char Sep) {
  Out.clear();
  std::stringstream In(S);
  std::string Tok;
  while (std::getline(In, Tok, Sep))
    Out.push_back(unsigned(std::atoi(Tok.c_str())));
  return !Out.empty();
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--machine") {
      std::vector<unsigned> V;
      const char *S = Next();
      if (!S || !parseUints(S, V, 'x') || V.size() != 2)
        return false;
      O.Fus = V[0];
      O.Regs = V[1];
    } else if (A == "--classed") {
      std::vector<unsigned> V;
      const char *S = Next();
      if (!S || !parseUints(S, V, ',') || V.size() != 5)
        return false;
      O.Classed = true;
      O.IntFus = V[0];
      O.FltFus = V[1];
      O.MemFus = V[2];
      O.Gprs = V[3];
      O.Fprs = V[4];
    } else if (A == "--latencies") {
      std::vector<unsigned> V;
      const char *S = Next();
      if (!S || !parseUints(S, V, ',') || V.size() != 3)
        return false;
      O.LatInt = V[0];
      O.LatFlt = V[1];
      O.LatMem = V[2];
    } else if (A == "--pipelined") {
      O.Pipelined = true;
    } else if (A == "--pipeline") {
      const char *S = Next();
      if (!S)
        return false;
      O.Pipeline = S;
    } else if (A == "--order") {
      const char *S = Next();
      if (!S)
        return false;
      O.Order = S;
    } else if (A == "--unroll") {
      const char *S = Next();
      if (!S)
        return false;
      O.Unroll = unsigned(std::atoi(S));
    } else if (A == "--auto-unroll") {
      O.AutoUnroll = true;
    } else if (A == "--emit") {
      const char *S = Next();
      if (!S)
        return false;
      O.EmitAsm = !std::strcmp(S, "asm");
      O.EmitDot = !std::strcmp(S, "dot");
      O.EmitStats = !std::strcmp(S, "stats");
    } else if (A == "--set") {
      const char *S = Next();
      if (!S)
        return false;
      std::string KV = S;
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos)
        return false;
      O.Inputs[KV.substr(0, Eq)] =
          Value::ofInt(std::atoll(KV.c_str() + Eq + 1));
    } else if (A == "--report") {
      O.Report = true;
    } else if (A == "--report-json") {
      O.ReportJson = true;
    } else if (A == "--trace-out") {
      const char *S = Next();
      if (!S)
        return false;
      O.TraceOut = S;
    } else if (A == "--run") {
      O.Run = true;
    } else if (A == "--verify") {
      const char *S = Next();
      if (!S)
        return false;
      if (std::string(S) != "off" && std::string(S) != "none" &&
          std::string(S) != "basic" && std::string(S) != "full") {
        std::fprintf(stderr, "unknown --verify level '%s' (off|basic|full)\n",
                     S);
        return false;
      }
      O.Verify = S;
    } else if (A == "--guaranteed-fit") {
      O.GuaranteedFit = true;
    } else if (A == "--time-budget") {
      const char *S = Next();
      if (!S)
        return false;
      O.TimeBudgetMs = unsigned(std::atoi(S));
    } else if (A == "--threads") {
      const char *S = Next();
      if (!S || std::atoi(S) < 1)
        return false;
      O.Threads = unsigned(std::atoi(S));
    } else if (A == "--beam") {
      const char *S = Next();
      if (!S || std::atoi(S) < 1)
        return false;
      O.Beam = unsigned(std::atoi(S));
    } else if (A == "--portfolio") {
      O.Portfolio = true;
    } else if (A == "--incremental") {
      O.Incremental = 1;
    } else if (A == "--no-incremental") {
      O.Incremental = 0;
    } else if (A == "--cache-size") {
      const char *S = Next();
      if (!S || std::atoi(S) < 1)
        return false;
      O.CacheSize = unsigned(std::atoi(S));
    } else if (A == "--closure") {
      const char *S = Next();
      if (!S)
        return false;
      if (std::string(S) != "dense" && std::string(S) != "blocked" &&
          std::string(S) != "auto") {
        std::fprintf(stderr,
                     "unknown --closure mode '%s' (dense|blocked|auto)\n", S);
        return false;
      }
      O.ClosureModeArg = S;
    } else if (A.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return false;
    } else {
      O.Input = A;
    }
  }
  return true;
}

CompileResult compileTraceBy(const std::string &Name, const Trace &T,
                             const MachineModel &M, const URSAOptions &UO) {
  if (Name == "prepass")
    return compilePrepass(T, M);
  if (Name == "postpass")
    return compilePostpass(T, M);
  if (Name == "integrated")
    return compileIntegrated(T, M);
  URSACompileResult R = compileURSA(T, M, UO);
  for (const Diag &D : R.Diags)
    std::fprintf(stderr, "%s\n", D.str().c_str());
  return R.Compile;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fprintf(stderr, "usage: see the header of examples/ursa_cc.cpp\n");
    return 1;
  }

  // Flushes --trace-out on every exit path.
  struct TraceGuard {
    bool Active = false;
    std::string Path;
    ~TraceGuard() {
      if (Active && !obs::endTrace())
        std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                     Path.c_str());
    }
  } TG;
  if (!O.TraceOut.empty()) {
    obs::startTrace(O.TraceOut);
    TG.Active = true;
    TG.Path = O.TraceOut;
  }

  if (O.ReportJson && O.Pipeline != "ursa") {
    std::fprintf(stderr,
                 "error: --report-json reports the URSA allocation and "
                 "needs --pipeline ursa\n");
    return 1;
  }

  std::string Source = DemoSource;
  if (!O.Input.empty()) {
    std::ifstream File(O.Input);
    if (!File) {
      std::fprintf(stderr, "error: cannot open '%s'\n", O.Input.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << File.rdbuf();
    Source = Buf.str();
  } else {
    if (!O.Inputs.count("i"))
      O.Inputs["i"] = Value::ofInt(24);
  }

  MachineModel M = O.Classed
                       ? MachineModel::classed(O.IntFus, O.FltFus, O.MemFus,
                                               O.Gprs, O.Fprs)
                       : MachineModel::homogeneous(O.Fus, O.Regs);
  if (O.LatInt != 1 || O.LatFlt != 1 || O.LatMem != 1)
    M.withLatencies(O.LatInt, O.LatFlt, O.LatMem);
  if (O.Pipelined)
    M.withPipelinedFUs();
  PhaseOrdering Order = O.Order == "fus" ? PhaseOrdering::FUsFirst
                        : O.Order == "integrated"
                            ? PhaseOrdering::Integrated
                            : PhaseOrdering::RegistersFirst;
  URSAOptions UO;
  UO.Order = Order;
  if (!O.Verify.empty())
    UO.Verify = parseVerifyLevel(O.Verify.c_str());
  UO.GuaranteedFit = O.GuaranteedFit;
  UO.TimeBudgetMs = O.TimeBudgetMs;
  UO.Threads = O.Threads;
  UO.BeamWidth = O.Beam;
  UO.Portfolio = O.Portfolio;
  if (O.Incremental >= 0)
    UO.IncrementalMeasure = O.Incremental != 0;
  if (O.CacheSize)
    UO.MeasurementCacheSize = O.CacheSize;
  if (!O.ClosureModeArg.empty())
    setClosureMode(O.ClosureModeArg == "dense"    ? ClosureMode::Dense
                   : O.ClosureModeArg == "blocked" ? ClosureMode::Blocked
                                                   : ClosureMode::Auto);

  bool IsCFG = Source.find("func ") != std::string::npos;

  if (!IsCFG) {
    // Straight-line trace path.
    Trace T("input");
    std::string Err;
    if (!parseTrace(Source, T, Err)) {
      std::fprintf(stderr, "parse error: %s\n", Err.c_str());
      return 1;
    }
    if (O.ReportJson) {
      DependenceDAG D0 = buildDAG(T);
      URSAResult AR = runURSA(D0, M, UO);
      std::printf("%s\n", formatAllocationReportJSON(D0, AR, M).c_str());
      return 0;
    }
    if (O.Report && O.Pipeline == "ursa") {
      DependenceDAG D0 = buildDAG(T);
      URSAResult AR = runURSA(D0, M, UO);
      std::printf("%s\n", formatAllocationReport(D0, AR, M).c_str());
    }
    CompileResult R = compileTraceBy(O.Pipeline, T, M, UO);
    if (!R.Ok) {
      std::fprintf(stderr, "compile error: %s\n", R.Error.c_str());
      return 1;
    }
    // Rendered through the same helper the compile service uses, so
    // ursa_batch output stays bit-identical to this tool's.
    std::fputs(
        formatCompileText(O.Pipeline, M, R, O.EmitStats, O.EmitAsm).c_str(),
        stdout);
    if (O.Run) {
      SimResult S = simulate(*R.Prog, O.Inputs);
      if (!S.Ok) {
        std::fprintf(stderr, "run error: %s\n", S.Error.c_str());
        return 1;
      }
      for (const auto &[Name, V] : S.Exec.Memory)
        std::printf("%s = %lld\n", Name.c_str(), (long long)V.I);
    }
    return 0;
  }

  // Whole-function path.
  CFGFunction F;
  std::string Err;
  if (!parseCFG(Source, F, Err)) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }

  CFGFunction U("pending");
  CompiledCFG C;
  if (O.AutoUnroll && O.Pipeline == "ursa") {
    PipelineSearchResult S = searchUnrollFactor(F, M, O.Inputs);
    if (!S.Ok) {
      std::fprintf(stderr, "auto-unroll failed: %s\n", S.Error.c_str());
      return 1;
    }
    std::printf("; auto-unroll picked x%u (calibrated at %u cycles)\n",
                S.BestFactor, S.BestCycles);
    U = std::move(S.Unrolled);
    C = std::move(S.Compiled);
  } else {
    U = unrollLoops(F, O.Unroll);
    C = compileCFG(U, M, [&](const Trace &T, const MachineModel &Mm) {
      return compileTraceBy(O.Pipeline, T, Mm, UO);
    });
    if (!C.Ok) {
      std::fprintf(stderr, "compile error: %s\n", C.Error.c_str());
      return 1;
    }
  }

  if (O.ReportJson) {
    // One allocation report per formed trace, wrapped with the machine
    // and a single end-of-run stats snapshot (per-trace reports skip the
    // snapshot — it is process-wide, not per-trace).
    obs::JsonWriter W;
    W.beginObject();
    W.kv("schema", "ursa.function_report.v1");
    W.kv("function", F.name());
    W.kv("machine", M.describe());
    W.key("traces").beginArray();
    for (const FormedTrace &FT : C.Traces.Traces) {
      DependenceDAG D0 = buildDAG(FT.Code);
      URSAResult AR = runURSA(D0, M, UO);
      W.raw(formatAllocationReportJSON(D0, AR, M, /*IncludeStats=*/false));
    }
    W.endArray();
    W.key("stats").beginObject();
    for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
      W.kv(SV.Name, SV.Value);
    W.endObject();
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return 0;
  }
  if (O.EmitDot) {
    for (unsigned TI = 0; TI != C.Traces.Traces.size(); ++TI) {
      DependenceDAG D = buildDAG(C.Traces.Traces[TI].Code);
      DotWriter W("trace" + std::to_string(TI));
      D.toDot(W);
      W.print(std::cout);
    }
    return 0;
  }
  if (O.EmitStats)
    std::printf("; %s on %s: %zu traces, %u static words, %u spill ops\n",
                O.Pipeline.c_str(), M.describe().c_str(),
                C.Traces.Traces.size(), C.TotalWords, C.TotalSpills);
  if (O.EmitAsm) {
    for (unsigned TI = 0; TI != C.Traces.Traces.size(); ++TI) {
      std::printf("trace %u:  ; blocks:", TI);
      for (unsigned B : C.Traces.Traces[TI].Blocks)
        std::printf(" %s", U.block(B).Name.c_str());
      std::printf("\n%s", C.Programs[TI].str().c_str());
    }
  }
  if (O.Run) {
    CFGExecResult R = runCompiledCFG(U, C, O.Inputs);
    if (!R.Ok) {
      std::fprintf(stderr, "run error: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("; executed %zu blocks in %u cycles\n", R.Path.size(),
                R.Cycles);
    for (const auto &[Name, V] : R.Memory)
      std::printf("%s = %lld\n", Name.c_str(), (long long)V.I);
  }
  return 0;
}
