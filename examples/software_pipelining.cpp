//===- examples/software_pipelining.cpp - Section 6 extension -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's future-work item: "combined with loop unrolling to create a
// new resource constrained software pipelining technique". Unroll a loop
// body, let URSA sequence/spill it down to the machine, and watch the
// per-iteration throughput approach the resource bound.
//
//   $ ./software_pipelining [fus] [regs]
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "ursa/Compiler.h"
#include "vliw/Simulator.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace ursa;

int main(int argc, char **argv) {
  unsigned Fus = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
  unsigned Regs = argc > 2 ? unsigned(std::atoi(argv[2])) : 8;
  MachineModel M = MachineModel::homogeneous(Fus, Regs);
  std::printf("machine: %s — hydro fragment (Livermore loop 1 body)\n\n",
              M.describe().c_str());

  Table Tbl({"unroll", "cycles", "cycles/iter", "spills", "fits",
             "utilization"});
  for (unsigned Unroll : {1u, 2u, 4u, 8u, 16u}) {
    Trace T = hydroTrace(Unroll);
    URSACompileResult R = compileURSA(T, M);
    if (!R.Compile.Ok) {
      Tbl.addRow({Table::fmt(uint64_t(Unroll)), "fail", "-", "-", "-", "-"});
      continue;
    }
    // Sanity: the code must still compute the right thing.
    RNG Rng(Unroll);
    MemoryState In = randomInputs(T, Rng);
    SimResult Sim = simulate(*R.Compile.Prog, In);
    bool Correct = Sim.Ok && Sim.Exec == interpret(T, In);
    Tbl.addRow({Table::fmt(uint64_t(Unroll)),
                Table::fmt(uint64_t(R.Compile.Cycles)),
                Table::fmt(double(R.Compile.Cycles) / Unroll, 2),
                Table::fmt(uint64_t(R.Compile.SpillOps)),
                R.AllocWithinLimits ? (Correct ? "yes" : "WRONG") : "residual",
                Table::fmt(R.Compile.Utilization, 2)});
  }
  Tbl.print(std::cout);
  std::printf("\nThe 9-op body bounds throughput at %.2f cycles/iteration "
              "on %u FUs; unrolling\nlets URSA overlap iterations until "
              "registers, not dependences, are the limit.\n",
              9.0 / Fus, Fus);
  return 0;
}
